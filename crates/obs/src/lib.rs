//! # fedgta-obs — zero-dependency observability for the FedGTA stack
//!
//! A measurement substrate for the whole simulator: hierarchical spans,
//! typed metrics, a JSONL trace sink, and a trace aggregator — with a
//! hard contract that **observability never changes numeric results** and
//! that the disabled path costs nothing but a relaxed atomic load.
//!
//! ## Pieces
//!
//! - [`ObsLevel`]: a process-global verbosity knob. `Off` (default) keeps
//!   every hot path allocation-free and nearly branch-free; `Metrics`
//!   arms the preallocated atomic counters/gauges/histograms; `Trace`
//!   additionally opens spans and streams one JSONL event per span close.
//! - [`metrics::Registry`]: named [`Counter`]s, [`Gauge`]s (max/set) and
//!   log2-bucketed [`Histogram`]s, global by default
//!   ([`metrics::global`]) or injected for tests. Renders a
//!   Prometheus-text snapshot via [`metrics::Registry::render_prometheus`].
//! - [`span`]: RAII span guards with monotonic-ns timing, thread-local
//!   parent stacks, and explicit cross-thread parenting
//!   ([`span::span_under`]) so per-client spans opened inside
//!   `par_map_indexed` workers still hang off the round's `train` span.
//! - [`sink`]: the JSONL event stream (`--trace-out trace.jsonl`),
//!   schema-versioned (`fedgta-trace/1`), thread-safe behind one mutex.
//! - [`trace`]: parses a JSONL trace back into events and aggregates it
//!   into per-round / per-client / per-span-name tables (p50/p95/max,
//!   bytes, throughput) — the engine behind `fedgta-cli report` — plus a
//!   self-time profiler emitting hot-span tables and folded stacks.
//! - [`recorder`]: the always-on flight recorder — a fixed-capacity ring
//!   of recent span-close/metric/fault events with a hard memory bound,
//!   serialized to a canonical postmortem dump on quorum failure or
//!   panic.
//! - [`serve`]: a zero-dependency `TcpListener` endpoint (`/metrics`,
//!   `/healthz`, `/rounds`) for live scraping of the global registry
//!   while a run is in flight.
//!
//! ## Determinism contract
//!
//! Instrumentation only *reads* the computation: counters accumulate
//! observed sizes, spans record wall-clock. No code path may branch on a
//! metric value, so results are bit-identical with observability off,
//! on, or mid-run-toggled, at any thread count. The integration suite
//! (`tests/integration_obs.rs` in the umbrella crate) proves this by
//! running the same federated round with tracing off/on × 1/4 threads.

pub mod metrics;
pub mod recorder;
pub mod serve;
pub mod sink;
pub mod span;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, MetricKind, Registry};
pub use sink::{init_jsonl, init_writer, shutdown, trace_installed, MemorySink};
pub use span::{
    current_span_id, now_ns, run_trace_id, span_named, span_under, FieldVal, SpanGuard,
};
pub use trace::{
    parse_flat_object, parse_trace, parse_trace_lossy, profile, render_folded, render_profile,
    render_report, summarize, JsonVal, Profile, ProfileRow, TraceEvent, TraceSummary,
};

/// Serializes unit tests that touch process-global observability state
/// (level, recorder ring) across this crate's test modules.
#[cfg(test)]
pub(crate) static TEST_GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

use std::sync::atomic::{AtomicU8, Ordering};

/// Trace schema identifier written as the first JSONL line and checked by
/// the parser. Bump on breaking event-shape changes.
///
/// Schema history (additive changes do not bump the version — readers
/// must tolerate unknown fields and default missing ones to zero):
/// - `fedgta-trace/1`: initial shape.
/// - `fedgta-trace/1` (comms update): round spans gained optional
///   `completed` / `dropped` / `retries` fields recording how many
///   sampled clients finished vs. were lost to faults or straggler
///   deadlines, and how many transport retries the round incurred.
pub const TRACE_SCHEMA: &str = "fedgta-trace/1";

/// Process-global observability level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// Nothing is recorded. Hot paths pay one relaxed atomic load.
    Off = 0,
    /// Counters/gauges/histograms accumulate; spans stay closed.
    Metrics = 1,
    /// Metrics plus hierarchical spans streaming to the trace sink.
    Trace = 2,
}

impl ObsLevel {
    /// Parses `off` / `metrics` / `trace` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "0" => Some(Self::Off),
            "metrics" | "1" => Some(Self::Metrics),
            "trace" | "2" => Some(Self::Trace),
            _ => None,
        }
    }

    /// Display name (`off` / `metrics` / `trace`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Metrics => "metrics",
            Self::Trace => "trace",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(ObsLevel::Off as u8);

/// Current observability level.
#[inline(always)]
pub fn level() -> ObsLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => ObsLevel::Off,
        1 => ObsLevel::Metrics,
        _ => ObsLevel::Trace,
    }
}

/// Sets the process-global observability level.
pub fn set_level(l: ObsLevel) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when metrics (counters/gauges/histograms) are armed.
#[inline(always)]
pub fn metrics_on() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Metrics as u8
}

/// True when span tracing is armed.
#[inline(always)]
pub fn trace_on() -> bool {
    LEVEL.load(Ordering::Relaxed) >= ObsLevel::Trace as u8
}

/// Runs `f`, returning its result and the elapsed wall-clock nanoseconds.
///
/// When tracing is on, the block is additionally recorded as a span named
/// `name` — this is the drop-in replacement for hand-rolled
/// `Instant::now()` pairs in the bench binaries: callers keep their
/// printed timings *and* the trace sees the phase.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, u64) {
    let guard = span_named(name);
    let t0 = std::time::Instant::now();
    let r = f();
    let ns = t0.elapsed().as_nanos() as u64;
    drop(guard);
    (r, ns)
}

/// A monotonically accumulating nanosecond cell (thread-safe), used to
/// hand phase durations from instrumented library layers (e.g. the
/// client-parallel executor) back to the driver without threading return
/// values through every strategy.
#[derive(Debug, Default)]
pub struct TimeCell(std::sync::atomic::AtomicU64);

impl TimeCell {
    /// A zeroed cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` nanoseconds.
    #[inline]
    pub fn add_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }

    /// Current accumulated nanoseconds.
    pub fn get_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take_ns(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Creates a span guard; accepts optional `key = value` fields.
///
/// ```
/// let _g = fedgta_obs::span!("round", round = 3u64);
/// let _g2 = fedgta_obs::span!("aggregate", strategy = "FedAvg");
/// ```
///
/// Values may be anything convertible into [`span::FieldVal`]: unsigned
/// integers, floats, `&'static str` / `String`. With tracing off this
/// compiles to a disarmed guard and performs no allocation.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_named($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::span_named($name)$(.with_field(stringify!($k), $crate::FieldVal::from($v)))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_roundtrip() {
        for l in [ObsLevel::Off, ObsLevel::Metrics, ObsLevel::Trace] {
            assert_eq!(ObsLevel::parse(l.name()), Some(l));
        }
        assert_eq!(ObsLevel::parse("TRACE"), Some(ObsLevel::Trace));
        assert_eq!(ObsLevel::parse("verbose"), None);
    }

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, ns) = timed("unit.timed", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            41 + 1
        });
        assert_eq!(v, 42);
        assert!(ns >= 1_000_000, "measured only {ns}ns");
    }

    #[test]
    fn time_cell_accumulates_and_takes() {
        let c = TimeCell::new();
        c.add_ns(5);
        c.add_ns(7);
        assert_eq!(c.get_ns(), 12);
        assert_eq!(c.take_ns(), 12);
        assert_eq!(c.get_ns(), 0);
    }
}
