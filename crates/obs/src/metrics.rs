//! Typed metrics: counters, gauges, log2-bucketed histograms, and the
//! [`Registry`] that names them.
//!
//! Every metric is a preallocated bundle of atomics: recording is one
//! relaxed atomic RMW guarded by a relaxed level load, so instrumented
//! hot paths (kernel entry points, the client-parallel executor) stay
//! allocation-free and safe inside `par_map_indexed` workers. With
//! [`crate::ObsLevel::Off`] the RMW is skipped entirely.
//!
//! Instrumented sites cache their handle once:
//!
//! ```
//! use std::sync::{Arc, OnceLock};
//! use fedgta_obs::{global, Counter};
//!
//! fn flops() -> &'static Arc<Counter> {
//!     static C: OnceLock<Arc<Counter>> = OnceLock::new();
//!     C.get_or_init(|| global().counter("kernel.matmul.flops"))
//! }
//! flops().add(128);
//! ```

use crate::metrics_on;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 histogram buckets: bucket `i > 0` covers
/// `[2^(i-1), 2^i)`; bucket 0 holds zeros; the last bucket absorbs
/// everything `>= 2^62`.
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `v` (no-op below [`crate::ObsLevel::Metrics`]).
    #[inline(always)]
    pub fn add(&self, v: u64) {
        if metrics_on() {
            self.value.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (tests / per-run resets).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value / high-water gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Stores `v` (no-op below metrics level).
    #[inline(always)]
    pub fn set(&self, v: u64) {
        if metrics_on() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (high-water tracking; no-op
    /// below metrics level).
    #[inline(always)]
    pub fn set_max(&self, v: u64) {
        if metrics_on() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log2-bucketed histogram of `u64` samples (nanoseconds, bytes, rows).
///
/// 64 fixed buckets cover the full `u64` range, so `observe` never
/// allocates and percentile queries resolve to a bucket's upper bound —
/// at most 2× relative error, plenty for latency breakdowns. The exact
/// maximum is tracked separately.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in: 0 for 0, else `64 - leading_zeros`
/// clamped to the last bucket (`[2^(i-1), 2^i)` for bucket `i`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The exclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Records one sample (no-op below metrics level).
    #[inline(always)]
    pub fn observe(&self, v: u64) {
        if !metrics_on() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket where the cumulative count crosses `q · count`. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Never report beyond the observed maximum.
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Per-bucket counts (for tests and serialization).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    /// `counter` / `gauge` / `histogram`.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// A read-only view of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Dotted metric name (e.g. `comms.upload_bytes`).
    pub name: String,
    pub kind: MetricKind,
    /// Counter or gauge value; histogram sum.
    pub value: u64,
    /// Histogram sample count (0 for counters/gauges).
    pub count: u64,
    /// Histogram p50 (bucket upper bound).
    pub p50: u64,
    /// Histogram p95 (bucket upper bound).
    pub p95: u64,
    /// Histogram exact max.
    pub max: u64,
    /// Histogram per-bucket counts ([`HIST_BUCKETS`] entries; empty for
    /// counters/gauges). Feeds the cumulative Prometheus exposition.
    pub buckets: Vec<u64>,
}

/// A named collection of metrics — global by default ([`global`]) or
/// constructed per test for isolation.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.inner.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.inner.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.inner.lock().expect("registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Point-in-time snapshot of every registered metric, name-sorted.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let m = self.inner.lock().expect("registry poisoned");
        m.iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => MetricSnapshot {
                    name: name.clone(),
                    kind: MetricKind::Counter,
                    value: c.get(),
                    count: 0,
                    p50: 0,
                    p95: 0,
                    max: 0,
                    buckets: Vec::new(),
                },
                Metric::Gauge(g) => MetricSnapshot {
                    name: name.clone(),
                    kind: MetricKind::Gauge,
                    value: g.get(),
                    count: 0,
                    p50: 0,
                    p95: 0,
                    max: 0,
                    buckets: Vec::new(),
                },
                Metric::Histogram(h) => MetricSnapshot {
                    name: name.clone(),
                    kind: MetricKind::Histogram,
                    value: h.sum(),
                    count: h.count(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    max: h.max(),
                    buckets: h.bucket_counts(),
                },
            })
            .collect()
    }

    /// Zeroes every registered metric (handles held by instrumented sites
    /// stay valid).
    pub fn reset(&self) {
        let m = self.inner.lock().expect("registry poisoned");
        for metric in m.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters and gauges render as themselves. Log2 histograms render
    /// as proper cumulative histogram series: one `_bucket{le="..."}`
    /// line per occupied prefix of the log2 grid, then `_bucket{le="+Inf"}`,
    /// `_sum` and `_count`. Because samples are integers and bucket `i`
    /// covers `[2^(i-1), 2^i)`, the *inclusive* upper bound `le = 2^i - 1`
    /// is exact, not approximate (bucket 0 holds zeros → `le="0"`). The
    /// exact observed maximum is kept as a companion `_max` gauge.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for s in self.snapshot() {
            let base = prometheus_name(&s.name);
            match s.kind {
                MetricKind::Counter => {
                    out.push_str(&format!("# TYPE {base} counter\n{base} {}\n", s.value));
                }
                MetricKind::Gauge => {
                    out.push_str(&format!("# TYPE {base} gauge\n{base} {}\n", s.value));
                }
                MetricKind::Histogram => {
                    out.push_str(&format!("# TYPE {base} histogram\n"));
                    let hi = s
                        .buckets
                        .iter()
                        .rposition(|&c| c > 0)
                        .map(|i| i.min(HIST_BUCKETS - 2))
                        .unwrap_or(0);
                    let mut cum = 0u64;
                    for (i, &c) in s.buckets.iter().enumerate().take(hi + 1) {
                        cum += c;
                        out.push_str(&format!(
                            "{base}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_le(i)
                        ));
                    }
                    out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", s.count));
                    out.push_str(&format!("{base}_sum {}\n", s.value));
                    out.push_str(&format!("{base}_count {}\n", s.count));
                    out.push_str(&format!("# TYPE {base}_max gauge\n{base}_max {}\n", s.max));
                }
            }
        }
        out
    }
}

/// Inclusive `le` label for log2 bucket `i`: bucket 0 holds zeros, bucket
/// `i > 0` covers `[2^(i-1), 2^i)` whose largest integer member is
/// `2^i - 1`. The final bucket has no finite bound (callers emit `+Inf`).
fn bucket_le(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// `comms.upload_bytes` → `fedgta_comms_upload_bytes`.
fn prometheus_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 7);
    s.push_str("fedgta_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            s.push(ch);
        } else {
            s.push('_');
        }
    }
    s
}

/// The process-global registry every default-instrumented site records
/// into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, ObsLevel};

    /// Serializes tests that flip the global level.
    static LEVEL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_only_move_when_enabled() {
        let _g = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Counter::default();
        set_level(ObsLevel::Off);
        c.add(5);
        assert_eq!(c.get(), 0);
        set_level(ObsLevel::Metrics);
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        set_level(ObsLevel::Off);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let _g = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(ObsLevel::Metrics);
        let g = Gauge::default();
        g.set(10);
        g.set_max(5); // lower: ignored
        assert_eq!(g.get(), 10);
        g.set_max(99);
        assert_eq!(g.get(), 99);
        set_level(ObsLevel::Off);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Satellite requirement: exact bucket-boundary coverage.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1); // [1, 2)
        assert_eq!(bucket_index(2), 2); // [2, 4)
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for i in 1..10 {
            // Every power of two opens a new bucket; one less stays below.
            assert_eq!(bucket_index(1 << i), i + 1);
            assert_eq!(bucket_index((1 << i) - 1), i);
        }
        assert_eq!(bucket_upper(3), 8);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_stats() {
        let _g = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(ObsLevel::Metrics);
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        // p50 of {1,2,3,100,1000}: third sample sits in bucket [2,4) → 4.
        assert_eq!(h.quantile(0.5), 4);
        // p100 is clamped to the exact max, not the bucket bound (1024).
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 2); // first sample's bucket [1,2) → upper bound 2
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        set_level(ObsLevel::Off);
    }

    #[test]
    fn registry_reuses_and_snapshots() {
        let _g = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_level(ObsLevel::Metrics);
        let r = Registry::new();
        let c1 = r.counter("a.count");
        let c2 = r.counter("a.count");
        c1.add(3);
        c2.add(4);
        r.gauge("b.gauge").set(9);
        r.histogram("c.hist").observe(17);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "a.count");
        assert_eq!(snap[0].value, 7, "both handles hit the same atomic");
        assert_eq!(snap[1].value, 9);
        assert_eq!(snap[2].count, 1);
        assert_eq!(snap[2].max, 17);
        let prom = r.render_prometheus();
        assert!(prom.contains("fedgta_a_count 7"));
        assert!(prom.contains("# TYPE fedgta_b_gauge gauge"));
        assert!(prom.contains("fedgta_c_hist_count 1"));
        // Histograms expose proper cumulative buckets: 17 lands in
        // [16, 32) → first nonzero cumulative count at le="31".
        assert!(prom.contains("# TYPE fedgta_c_hist histogram"));
        assert!(prom.contains("fedgta_c_hist_bucket{le=\"15\"} 0"));
        assert!(prom.contains("fedgta_c_hist_bucket{le=\"31\"} 1"));
        assert!(prom.contains("fedgta_c_hist_bucket{le=\"+Inf\"} 1"));
        assert!(prom.contains("fedgta_c_hist_sum 17"));
        assert!(!prom.contains("_p50"), "quantile gauges superseded by buckets");
        r.reset();
        assert_eq!(r.counter("a.count").get(), 0);
        set_level(ObsLevel::Off);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
