//! The trace sink: a process-global JSONL event stream.
//!
//! One mutex-guarded writer receives every span-close and metric-flush
//! event. Contention is negligible at simulator scale (spans close at
//! round/client granularity, not per-kernel-call), and a single writer
//! keeps the format trivially valid: one JSON object per line, first line
//! the schema header.
//!
//! The serde shim in this workspace is a no-op, so events serialize
//! themselves with a small hand-rolled JSON writer (same idiom as
//! `fedgta_bench::kernels::to_json`).

use crate::metrics::{MetricSnapshot, Registry};
use crate::span::FieldVal;
use crate::TRACE_SCHEMA;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

type SharedWriter = Box<dyn Write + Send>;

static SINK: Mutex<Option<SharedWriter>> = Mutex::new(None);
/// Cheap installed-check so disarmed spans never touch the mutex.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_line(line: &str) {
    let mut guard = SINK.lock().expect("trace sink poisoned");
    if let Some(w) = guard.as_mut() {
        // Trace IO must never abort a simulation: drop events on error.
        let _ = writeln!(w, "{line}");
    }
}

/// True when a trace sink is installed.
#[inline]
pub fn trace_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

fn install(mut w: SharedWriter) -> std::io::Result<()> {
    writeln!(
        w,
        "{{\"ev\":\"meta\",\"schema\":\"{}\",\"threads_hint\":{}}}",
        TRACE_SCHEMA,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    )?;
    *SINK.lock().expect("trace sink poisoned") = Some(w);
    INSTALLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Installs a JSONL sink writing to `path` (truncates) and writes the
/// schema header line.
pub fn init_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    install(Box::new(std::io::BufWriter::new(f)))
}

/// Installs an arbitrary writer as the sink (tests use an in-memory
/// buffer; see [`MemorySink`]).
pub fn init_writer(w: Box<dyn Write + Send>) -> std::io::Result<()> {
    install(w)
}

/// An `Arc<Mutex<Vec<u8>>>`-backed writer for in-process round-trip
/// tests: install a clone via [`init_writer`], read the bytes back after
/// [`shutdown`].
#[derive(Debug, Clone, Default)]
pub struct MemorySink(pub Arc<Mutex<Vec<u8>>>);

impl MemorySink {
    /// A fresh empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far, as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("memory sink poisoned")).into_owned()
    }
}

impl Write for MemorySink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("memory sink poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Emits one span-close event (called from [`crate::span::SpanGuard`]'s
/// drop; no-op without a sink).
pub(crate) fn write_span(
    name: &str,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    fields: &[(&'static str, FieldVal)],
) {
    if !trace_installed() {
        return;
    }
    let mut line = String::with_capacity(128);
    line.push_str(&format!(
        "{{\"ev\":\"span\",\"name\":\"{}\",\"id\":{id},\"parent\":{parent},\"tid\":{tid},\
         \"ts_ns\":{start_ns},\"dur_ns\":{dur_ns}",
        json_escape(name)
    ));
    for (k, v) in fields {
        match v {
            FieldVal::U64(u) => line.push_str(&format!(",\"{}\":{u}", json_escape(k))),
            FieldVal::F64(f) if f.is_finite() => {
                line.push_str(&format!(",\"{}\":{f}", json_escape(k)))
            }
            FieldVal::F64(_) => line.push_str(&format!(",\"{}\":null", json_escape(k))),
            FieldVal::Text(s) => {
                line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(s)))
            }
        }
    }
    line.push('}');
    write_line(&line);
}

/// Writes one `metric` event per entry of a registry snapshot (the
/// "metric flush" events of the schema).
pub fn flush_metrics_from(registry: &Registry) {
    if !trace_installed() {
        return;
    }
    for s in registry.snapshot() {
        write_metric(&s);
    }
}

fn write_metric(s: &MetricSnapshot) {
    write_line(&format!(
        "{{\"ev\":\"metric\",\"name\":\"{}\",\"kind\":\"{}\",\"value\":{},\"count\":{},\
         \"p50\":{},\"p95\":{},\"max\":{}}}",
        json_escape(&s.name),
        s.kind.as_str(),
        s.value,
        s.count,
        s.p50,
        s.p95,
        s.max
    ));
}

/// Flushes the global registry's metrics into the trace, writes the end
/// marker, flushes and uninstalls the sink. Idempotent.
pub fn shutdown() {
    if !trace_installed() {
        return;
    }
    flush_metrics_from(crate::metrics::global());
    write_line("{\"ev\":\"end\"}");
    let mut guard = SINK.lock().expect("trace sink poisoned");
    if let Some(w) = guard.as_mut() {
        let _ = w.flush();
    }
    *guard = None;
    INSTALLED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn memory_sink_accumulates() {
        let m = MemorySink::new();
        let mut w = m.clone();
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        assert_eq!(m.contents(), "hello world");
    }
}
