//! Classification metrics: accuracy and macro-F1.

use crate::tensor::Matrix;

/// Accuracy of `probs` (rows = nodes) against `labels`, restricted to
/// `rows`. Returns 0 on an empty subset.
pub fn accuracy(probs: &Matrix, labels: &[u32], rows: &[u32]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let pred = probs.argmax_rows();
    let correct = rows
        .iter()
        .filter(|&&i| pred[i as usize] == labels[i as usize])
        .count();
    correct as f64 / rows.len() as f64
}

/// Macro-averaged F1 over `num_classes` classes, restricted to `rows`.
/// Classes absent from the subset contribute F1 = 0 only if they were
/// predicted; truly absent classes are skipped (scikit-learn convention
/// with `zero_division=0` over present classes).
pub fn macro_f1(probs: &Matrix, labels: &[u32], rows: &[u32], num_classes: usize) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let pred = probs.argmax_rows();
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnv = vec![0usize; num_classes];
    for &i in rows {
        let (p, y) = (pred[i as usize] as usize, labels[i as usize] as usize);
        if p == y {
            tp[y] += 1;
        } else {
            fp[p] += 1;
            fnv[y] += 1;
        }
    }
    let mut sum = 0f64;
    let mut present = 0usize;
    for c in 0..num_classes {
        let support = tp[c] + fnv[c];
        let predicted = tp[c] + fp[c];
        if support == 0 && predicted == 0 {
            continue;
        }
        present += 1;
        if tp[c] == 0 {
            continue;
        }
        let prec = tp[c] as f64 / predicted as f64;
        let rec = tp[c] as f64 / support as f64;
        sum += 2.0 * prec * rec / (prec + rec);
    }
    if present == 0 {
        0.0
    } else {
        sum / present as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        let labels = [0u32, 1, 1];
        assert_eq!(accuracy(&probs, &labels, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&probs, &labels, &[0, 1]), 1.0);
        assert_eq!(accuracy(&probs, &labels, &[]), 0.0);
    }

    #[test]
    fn perfect_macro_f1_is_one() {
        let probs = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let labels = [0u32, 1];
        assert!((macro_f1(&probs, &labels, &[0, 1], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_minority_errors() {
        // 3 of class 0 correct, 1 of class 1 wrong: acc = 0.75 but macro-F1 lower.
        let probs = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0]]);
        let labels = [0u32, 0, 0, 1];
        let acc = accuracy(&probs, &labels, &[0, 1, 2, 3]);
        let f1 = macro_f1(&probs, &labels, &[0, 1, 2, 3], 2);
        assert!(f1 < acc);
    }
}
