//! Multi-layer perceptron over a single flat parameter buffer, with exact
//! manual backprop and hidden-gradient injection.
//!
//! Layout: for each layer `l` the flat buffer stores `W_l`
//! (`dims[l] × dims[l+1]`, row-major) followed by `b_l` (`dims[l+1]`).
//! Hidden layers apply ReLU then (inverted) dropout; the final layer is
//! linear — pair with [`crate::loss::softmax_ce`].
//!
//! **Allocation-free hot path**: [`Mlp::forward_ws`] / [`Mlp::backward_ws`]
//! take a [`Workspace`] and check every activation, cache matrix, and
//! gradient buffer out of it; weights are read through [`MatView`]s
//! straight from the flat parameter buffer (the seed code materialized a
//! fresh `Matrix` copy of each weight block per call). Hidden layers run
//! the fused `matmul_bias_relu_into` epilogue. After one warmup batch the
//! workspace pool is saturated and training performs O(1) heap
//! allocations per step. The plain [`Mlp::forward`]/[`Mlp::backward`] API
//! is kept as a convenience wrapper over a throwaway workspace.
//!
//! **Hidden-gradient injection**: [`Mlp::backward_ws`] accepts an optional
//! extra gradient on the *input of the final layer* (the model's
//! penultimate representation). MOON's model-contrastive loss differentiates
//! w.r.t. exactly that representation, so federated strategies can add
//! auxiliary losses without touching the model code.

use crate::init::xavier_uniform;
use crate::ops::{
    col_sums_into, matmul_bias_into, matmul_bias_relu_into, matmul_nt_into, matmul_tn_into,
    relu_backward_inplace,
};
use crate::tensor::{MatView, Matrix};
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A multi-layer perceptron (`dims = [in, h₁, …, out]`).
#[derive(Debug, Clone)]
pub struct Mlp {
    dims: Vec<usize>,
    params: Vec<f32>,
    dropout: f32,
    rng: StdRng,
}

/// Forward cache for one batch: everything backward needs.
///
/// `inputs[l]` is the input fed to layer `l` (`inputs.len() == L`);
/// for `l ≥ 1` it doubles as the post-activation/post-dropout output of
/// hidden layer `l−1` (the seed kept a redundant `hidden_out` copy).
pub struct MlpCache {
    inputs: Vec<Matrix>,
    /// Inverted-dropout masks (values `0` or `1/keep`), hidden layers only.
    dropout_masks: Vec<Option<Vec<f32>>>,
}

impl MlpCache {
    /// The representation entering the final layer (MOON's `z`).
    pub fn penultimate(&self) -> &Matrix {
        self.inputs.last().expect("at least one layer")
    }

    /// Returns every buffer to the workspace for reuse by the next batch.
    pub fn recycle(self, ws: &mut Workspace) {
        for m in self.inputs {
            ws.give_matrix(m);
        }
        for mask in self.dropout_masks.into_iter().flatten() {
            ws.give(mask);
        }
    }
}

impl Mlp {
    /// Creates an MLP with Xavier-initialized weights and zero biases.
    ///
    /// `dims` must have at least 2 entries. `dropout` applies to hidden
    /// activations during training only.
    pub fn new(dims: &[usize], dropout: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = vec![0f32; Self::param_count(dims)];
        let mut off = 0;
        for l in 0..dims.len() - 1 {
            let (fi, fo) = (dims[l], dims[l + 1]);
            xavier_uniform(&mut params[off..off + fi * fo], fi, fo, &mut rng);
            off += fi * fo + fo; // biases stay zero
        }
        Self {
            dims: dims.to_vec(),
            params,
            dropout,
            rng,
        }
    }

    fn param_count(dims: &[usize]) -> usize {
        dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Number of layers (linear transforms).
    pub fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// Layer dimensions `[in, h₁, …, out]`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter buffer.
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Replaces all parameters (length must match).
    pub fn set_params(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.params.len(), "param length mismatch");
        self.params.copy_from_slice(p);
    }

    /// Mutable flat parameter access (for the optimizer).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    pub(crate) fn layer_offsets(&self, l: usize) -> (usize, usize, usize) {
        // returns (w_start, b_start, end)
        let mut off = 0;
        for i in 0..l {
            off += self.dims[i] * self.dims[i + 1] + self.dims[i + 1];
        }
        let w = off;
        let b = w + self.dims[l] * self.dims[l + 1];
        (w, b, b + self.dims[l + 1])
    }

    /// Borrowed view of layer `l`'s weight block (no copy).
    pub(crate) fn weight_view(&self, l: usize) -> MatView<'_> {
        let (w, b, _) = self.layer_offsets(l);
        MatView::new(self.dims[l], self.dims[l + 1], &self.params[w..b])
    }

    pub(crate) fn bias(&self, l: usize) -> &[f32] {
        let (_, b, e) = self.layer_offsets(l);
        &self.params[b..e]
    }

    /// Full forward pass through a workspace; returns `(logits, cache)`.
    ///
    /// `train = true` enables dropout (consuming internal RNG state). All
    /// returned matrices are checked out of `ws`; recycle the cache (and
    /// eventually the logits) to keep the pool warm.
    pub fn forward_ws(&mut self, x: &Matrix, train: bool, ws: &mut Workspace) -> (Matrix, MlpCache) {
        let layers = self.num_layers();
        let rows = x.rows();
        let mut inputs = Vec::with_capacity(layers);
        let mut dropout_masks = Vec::with_capacity(layers.saturating_sub(1));
        let mut cur = ws.take_matrix(rows, x.cols());
        cur.copy_from(x);
        for l in 0..layers {
            let mut z = ws.take_matrix(rows, self.dims[l + 1]);
            if l + 1 < layers {
                matmul_bias_relu_into(cur.view(), self.weight_view(l), self.bias(l), z.as_mut_slice());
                let mask = if train && self.dropout > 0.0 {
                    let keep = 1.0 - self.dropout;
                    let inv = 1.0 / keep;
                    let mut mask = ws.take(rows * self.dims[l + 1]);
                    for (m, v) in mask.iter_mut().zip(z.as_mut_slice()) {
                        if self.rng.random::<f32>() < keep {
                            *m = inv;
                            *v *= inv;
                        } else {
                            *m = 0.0;
                            *v = 0.0;
                        }
                    }
                    Some(mask)
                } else {
                    None
                };
                dropout_masks.push(mask);
            } else {
                matmul_bias_into(cur.view(), self.weight_view(l), self.bias(l), z.as_mut_slice());
            }
            inputs.push(cur);
            cur = z;
        }
        (
            cur,
            MlpCache {
                inputs,
                dropout_masks,
            },
        )
    }

    /// Full forward pass (convenience wrapper over a throwaway workspace).
    pub fn forward(&mut self, x: &Matrix, train: bool) -> (Matrix, MlpCache) {
        let mut ws = Workspace::new();
        self.forward_ws(x, train, &mut ws)
    }

    /// Inference forward (no dropout, no RNG consumption).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut ws = Workspace::new();
        self.infer_ws(x, &mut ws)
    }

    /// Inference forward through a workspace.
    pub fn infer_ws(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let layers = self.num_layers();
        let rows = x.rows();
        let mut cur = ws.take_matrix(rows, x.cols());
        cur.copy_from(x);
        for l in 0..layers {
            let mut z = ws.take_matrix(rows, self.dims[l + 1]);
            if l + 1 < layers {
                matmul_bias_relu_into(cur.view(), self.weight_view(l), self.bias(l), z.as_mut_slice());
            } else {
                matmul_bias_into(cur.view(), self.weight_view(l), self.bias(l), z.as_mut_slice());
            }
            ws.give_matrix(std::mem::replace(&mut cur, z));
        }
        cur
    }

    /// The penultimate representation for inference (input to final layer).
    pub fn infer_hidden(&self, x: &Matrix) -> Matrix {
        let layers = self.num_layers();
        if layers == 1 {
            return x.clone();
        }
        let mut ws = Workspace::new();
        let mut cur = ws.take_matrix(x.rows(), x.cols());
        cur.copy_from(x);
        for l in 0..layers - 1 {
            let mut z = ws.take_matrix(x.rows(), self.dims[l + 1]);
            matmul_bias_relu_into(cur.view(), self.weight_view(l), self.bias(l), z.as_mut_slice());
            ws.give_matrix(std::mem::replace(&mut cur, z));
        }
        cur
    }

    /// Exact backward pass through a workspace.
    ///
    /// `d_logits` is the gradient at the final linear output;
    /// `hidden_grad`, if given, is added to the gradient at the input of
    /// the final layer. Returns `(flat parameter gradients, gradient
    /// w.r.t. the batch input)` — both checked out of `ws`; give them back
    /// after the optimizer step to keep the pool warm. Weight gradients are
    /// written directly into their slots of the flat buffer (no `dW`
    /// temporaries).
    pub fn backward_ws(
        &self,
        cache: &MlpCache,
        d_logits: &Matrix,
        hidden_grad: Option<&Matrix>,
        ws: &mut Workspace,
    ) -> (Vec<f32>, Matrix) {
        let layers = self.num_layers();
        let rows = d_logits.rows();
        let mut grads = ws.take(self.params.len());
        let mut d_out = ws.take_matrix(rows, d_logits.cols());
        d_out.copy_from(d_logits);
        for l in (0..layers).rev() {
            let x = &cache.inputs[l];
            // dW = xᵀ · d_out ; db = col_sums(d_out) ; dx = d_out · Wᵀ
            let (ws_off, bs, be) = self.layer_offsets(l);
            matmul_tn_into(x.view(), d_out.view(), &mut grads[ws_off..bs]);
            col_sums_into(&d_out, &mut grads[bs..be]);
            let mut dx = ws.take_matrix(rows, self.dims[l]);
            matmul_nt_into(d_out.view(), self.weight_view(l), dx.as_mut_slice());
            if l == 0 {
                ws.give_matrix(d_out);
                return (grads, dx);
            }
            if l == layers - 1 {
                if let Some(hg) = hidden_grad {
                    dx.axpy(1.0, hg);
                }
            }
            // Backward through dropout then ReLU of hidden layer l-1
            // (cache.inputs[l] is that layer's post-dropout output).
            if let Some(mask) = &cache.dropout_masks[l - 1] {
                for (g, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
                    *g *= m;
                }
            }
            relu_backward_inplace(&mut dx, &cache.inputs[l]);
            ws.give_matrix(std::mem::replace(&mut d_out, dx));
        }
        unreachable!("loop always returns at l == 0");
    }

    /// Exact backward pass (convenience wrapper over a throwaway
    /// workspace).
    pub fn backward(
        &self,
        cache: &MlpCache,
        d_logits: &Matrix,
        hidden_grad: Option<&Matrix>,
    ) -> (Vec<f32>, Matrix) {
        let mut ws = Workspace::new();
        self.backward_ws(cache, d_logits, hidden_grad, &mut ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_ce;

    #[test]
    fn shapes_and_param_count() {
        let mlp = Mlp::new(&[4, 8, 3], 0.0, 0);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        let x = Matrix::zeros(5, 4);
        let y = mlp.infer(&x);
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(mlp.infer_hidden(&x).shape(), (5, 8));
    }

    #[test]
    fn set_params_roundtrip() {
        let mut mlp = Mlp::new(&[2, 3], 0.0, 1);
        let p: Vec<f32> = (0..mlp.num_params()).map(|i| i as f32).collect();
        mlp.set_params(&p);
        assert_eq!(mlp.params(), &p[..]);
    }

    #[test]
    fn workspace_roundtrip_matches_throwaway_path() {
        let mut mlp = Mlp::new(&[3, 6, 4], 0.0, 9);
        let x = Matrix::from_vec(5, 3, (0..15).map(|i| (i as f32 * 0.31).sin()).collect());
        let (a, cache_a) = mlp.forward(&x, false);
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let (b, cache_b) = mlp.forward_ws(&x, false, &mut ws);
            assert_eq!(a.as_slice(), b.as_slice());
            assert_eq!(mlp.infer_ws(&x, &mut ws).as_slice(), a.as_slice());
            cache_b.recycle(&mut ws);
            ws.give_matrix(b);
        }
        drop(cache_a);
    }

    #[test]
    fn gradient_check_two_layer() {
        let mut mlp = Mlp::new(&[3, 5, 4], 0.0, 7);
        let x = Matrix::from_vec(6, 3, (0..18).map(|i| ((i * 13 % 7) as f32 - 3.0) / 3.0).collect());
        let labels: Vec<u32> = (0..6).map(|i| (i % 4) as u32).collect();
        let rows: Vec<u32> = (0..6).collect();

        let (logits, cache) = mlp.forward(&x, false);
        let (_, d_logits) = softmax_ce(&logits, &labels, &rows);
        let (grads, _) = mlp.backward(&cache, &d_logits, None);

        let eps = 1e-2f32;
        let n = mlp.num_params();
        // Spot-check a spread of parameters.
        for idx in (0..n).step_by(n / 17 + 1) {
            let orig = mlp.params()[idx];
            let mut p = mlp.params().to_vec();
            p[idx] = orig + eps;
            mlp.set_params(&p);
            let (lp, _) = softmax_ce(&mlp.infer(&x), &labels, &rows);
            p[idx] = orig - eps;
            mlp.set_params(&p);
            let (lm, _) = softmax_ce(&mlp.infer(&x), &labels, &rows);
            p[idx] = orig;
            mlp.set_params(&p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 2e-2,
                "param {idx}: fd {fd} vs analytic {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn input_gradient_check() {
        let mut mlp = Mlp::new(&[3, 4, 2], 0.0, 3);
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.8, -0.7, 0.1, 0.3]);
        let labels = vec![1u32, 0];
        let rows = vec![0u32, 1];
        let (logits, cache) = mlp.forward(&x, false);
        let (_, d_logits) = softmax_ce(&logits, &labels, &rows);
        let (_, dx) = mlp.backward(&cache, &d_logits, None);
        let eps = 1e-2f32;
        for i in 0..2 {
            for j in 0..3 {
                let mut xp = x.clone();
                xp.set(i, j, xp.get(i, j) + eps);
                let (lp, _) = softmax_ce(&mlp.infer(&xp), &labels, &rows);
                let mut xm = x.clone();
                xm.set(i, j, xm.get(i, j) - eps);
                let (lm, _) = softmax_ce(&mlp.infer(&xm), &labels, &rows);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - dx.get(i, j)).abs() < 1e-2,
                    "input ({i},{j}): fd {fd} vs {}",
                    dx.get(i, j)
                );
            }
        }
    }

    #[test]
    fn hidden_grad_injection_check() {
        // Loss = CE + 0.5 * sum(h²) where h is the penultimate rep;
        // dL_extra/dh = h injected via hidden_grad.
        let mut mlp = Mlp::new(&[2, 3, 2], 0.0, 11);
        let x = Matrix::from_vec(2, 2, vec![0.4, -0.6, 0.9, 0.2]);
        let labels = vec![0u32, 1];
        let rows = vec![0u32, 1];
        let loss_fn = |m: &mut Mlp| {
            let h = m.infer_hidden(&x);
            let (ce, _) = softmax_ce(&m.infer(&x), &labels, &rows);
            ce + 0.5 * h.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let (logits, cache) = mlp.forward(&x, false);
        let (_, d_logits) = softmax_ce(&logits, &labels, &rows);
        let hidden = cache.penultimate().clone();
        let (grads, _) = mlp.backward(&cache, &d_logits, Some(&hidden));
        let eps = 1e-2f32;
        let n = mlp.num_params();
        for idx in (0..n).step_by(3) {
            let orig = mlp.params()[idx];
            let mut p = mlp.params().to_vec();
            p[idx] = orig + eps;
            mlp.set_params(&p);
            let lp = loss_fn(&mut mlp);
            p[idx] = orig - eps;
            mlp.set_params(&p);
            let lm = loss_fn(&mut mlp);
            p[idx] = orig;
            mlp.set_params(&p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 5e-2,
                "param {idx}: fd {fd} vs analytic {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let mut mlp = Mlp::new(&[2, 64, 2], 0.5, 5);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let (_, cache) = mlp.forward(&x, true);
        let mask = cache.dropout_masks[0].as_ref().unwrap();
        let zeros = mask.iter().filter(|&&m| m == 0.0).count();
        let twos = mask.iter().filter(|&&m| (m - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + twos, 64);
        assert!(zeros > 8 && twos > 8, "zeros {zeros} twos {twos}");
        // Inference ignores dropout.
        let a = mlp.infer(&x);
        let b = mlp.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn single_layer_penultimate_is_input() {
        let mut mlp = Mlp::new(&[3, 2], 0.0, 0);
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let (_, cache) = mlp.forward(&x, false);
        assert_eq!(cache.penultimate(), &x);
        assert_eq!(mlp.infer_hidden(&x), x);
    }
}
