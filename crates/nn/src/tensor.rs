//! Row-major `f32` dense matrices and borrowed views.

/// A dense row-major `f32` matrix.
///
/// Deliberately minimal: the NN stack needs construction, row access, and a
/// few elementwise combinators; heavy lifting lives in [`crate::ops`].
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// A borrowed row-major matrix view (`rows × cols` over a `&[f32]`).
///
/// The compute kernels in [`crate::ops`] take `MatView` operands so callers
/// can feed sub-slices of flat parameter buffers (e.g. one layer's weight
/// block inside [`crate::mlp::Mlp`]'s packed storage) without materializing
/// an owning [`Matrix`] — one of the allocation sources the `_into` kernel
/// family exists to eliminate.
#[derive(Debug, Clone, Copy)]
pub struct MatView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> MatView<'a> {
    /// Wraps a slice (`data.len()` must equal `rows * cols`).
    #[inline]
    pub fn new(rows: usize, cols: usize, data: &'a [f32]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix view size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl<'a> From<&'a Matrix> for MatView<'a> {
    fn from(m: &'a Matrix) -> Self {
        m.view()
    }
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix ([`Matrix::empty`]).
    fn default() -> Self {
        Matrix::empty()
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing buffer (`data.len()` must equal `rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Builds from a row-of-rows literal (for tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes self, returning the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The empty `0 × 0` matrix (no allocation) — the natural seed for
    /// buffers grown later via [`Matrix::resize_to`].
    pub fn empty() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }

    /// Reshapes in place to `rows × cols`, reusing the existing buffer
    /// (no allocation once capacity suffices). Contents are unspecified
    /// afterwards — callers overwrite every element.
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// A borrowed view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatView<'_> {
        MatView {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }

    /// Copies `other`'s contents into `self` (shapes must match).
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Gathers the given rows into a new matrix (used for mini-batching).
    pub fn gather_rows(&self, idx: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        self.gather_rows_into(idx, &mut out);
        out
    }

    /// Gathers the given rows into a caller-provided matrix
    /// (`out.shape() == (idx.len(), self.cols)`); the allocation-free
    /// mini-batch path.
    pub fn gather_rows_into(&self, idx: &[u32], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (idx.len(), self.cols),
            "gather_rows_into shape mismatch"
        );
        for (o, &i) in idx.iter().enumerate() {
            out.row_mut(o).copy_from_slice(self.row(i as usize));
        }
    }

    /// Horizontal concatenation `[self ‖ other]` (same row count).
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Splits columns at `at`: returns (left `rows×at`, right `rows×(cols-at)`).
    pub fn hsplit(&self, at: usize) -> (Matrix, Matrix) {
        assert!(at <= self.cols);
        let mut left = Matrix::zeros(self.rows, at);
        let mut right = Matrix::zeros(self.rows, self.cols - at);
        for i in 0..self.rows {
            left.row_mut(i).copy_from_slice(&self.row(i)[..at]);
            right.row_mut(i).copy_from_slice(&self.row(i)[at..]);
        }
        (left, right)
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }

    /// Index of the maximum entry per row (first on ties).
    pub fn argmax_rows(&self) -> Vec<u32> {
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "matrix buffer size mismatch")]
    fn from_vec_checks_size() {
        Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn gather_rows_copies_in_order() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn hcat_and_hsplit_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
        let c = a.hcat(&b);
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        let (l, r) = c.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn axpy_scale_norm() {
        let mut a = Matrix::from_rows(&[&[1.0, 0.0]]);
        let b = Matrix::from_rows(&[&[0.0, 2.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.0, 1.0]);
        a.scale(3.0);
        assert_eq!(a.as_slice(), &[3.0, 3.0]);
        assert!((a.norm() - (18.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn view_borrows_without_copy() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = m.view();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        assert_eq!(v.as_slice().as_ptr(), m.as_slice().as_ptr());
        let w = MatView::new(1, 4, m.as_slice());
        assert_eq!(w.row(0), m.as_slice());
    }

    #[test]
    #[should_panic(expected = "matrix view size mismatch")]
    fn view_checks_size() {
        MatView::new(2, 3, &[0.0; 5]);
    }

    #[test]
    fn gather_rows_into_reuses_buffer() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let mut out = Matrix::zeros(2, 1);
        m.gather_rows_into(&[2, 1], &mut out);
        assert_eq!(out.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn argmax_rows_first_on_ties() {
        let m = Matrix::from_rows(&[&[1.0, 3.0, 3.0], &[5.0, 2.0, 1.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }
}
