//! Parameter initialization (seeded, reproducible).

use rand::rngs::StdRng;
use rand::Rng;

/// Fills `buf` with Glorot/Xavier-uniform values for a `fan_in × fan_out`
/// weight: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(buf: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut StdRng) {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    for v in buf {
        *v = rng.random_range(-a..a);
    }
}

/// Fills `buf` with zeros (bias init).
pub fn zeros(buf: &mut [f32]) {
    buf.fill(0.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound_and_seeded() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = vec![0f32; 64];
        xavier_uniform(&mut a, 8, 8, &mut rng);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(a.iter().all(|&v| v.abs() <= bound));
        assert!(a.iter().any(|&v| v != 0.0));
        // Deterministic.
        let mut rng2 = StdRng::seed_from_u64(1);
        let mut b = vec![0f32; 64];
        xavier_uniform(&mut b, 8, 8, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn zeros_clears() {
        let mut a = vec![1f32; 4];
        zeros(&mut a);
        assert!(a.iter().all(|&v| v == 0.0));
    }
}
