//! Shared data structures for graph models: the dataset view a model
//! trains on and the hook bundle federated strategies use to inject
//! auxiliary objectives.

use crate::tensor::Matrix;
use fedgta_graph::{normalized_adjacency, Csr, NormKind};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DATASET_KEY: AtomicU64 = AtomicU64::new(1);

/// A node-classification dataset over one graph (global or a client's
/// local subgraph), with the two normalized adjacencies models need
/// precomputed.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    /// Symmetric GCN normalization `D̂^{-1/2} Â D̂^{-1/2}`.
    pub adj_norm: Csr,
    /// Row-stochastic mean aggregation `D̂^{-1} Â` (GraphSAGE).
    pub adj_mean: Csr,
    /// Transpose of `adj_mean` (needed by SAGE backprop).
    pub adj_mean_t: Csr,
    /// Node features (`n × f`).
    pub features: Matrix,
    /// Node labels (`n`; ignored where masks exclude a node).
    pub labels: Vec<u32>,
    /// Number of classes.
    pub num_classes: usize,
    /// Node ids with training labels.
    pub train_nodes: Vec<u32>,
    /// Node ids used for validation.
    pub val_nodes: Vec<u32>,
    /// Node ids used for testing.
    pub test_nodes: Vec<u32>,
    /// Weighted degrees of `Â = A + I` (the `D̂_ii` FedGTA's smoothing
    /// confidence weights by).
    pub degrees_hat: Vec<f32>,
    /// Identity key for propagated-feature caches (unique per dataset
    /// instance; cloning keeps the key because the contents are equal).
    pub cache_key: u64,
}

impl GraphDataset {
    /// Builds a dataset from a raw graph; computes both normalized
    /// adjacencies.
    pub fn new(
        graph: &Csr,
        features: Matrix,
        labels: Vec<u32>,
        num_classes: usize,
        train_nodes: Vec<u32>,
        val_nodes: Vec<u32>,
        test_nodes: Vec<u32>,
    ) -> Self {
        assert_eq!(graph.num_nodes(), features.rows(), "feature row mismatch");
        assert_eq!(graph.num_nodes(), labels.len(), "label length mismatch");
        let adj_norm = normalized_adjacency(graph, NormKind::Symmetric);
        let adj_mean = normalized_adjacency(graph, NormKind::RowStochastic);
        let adj_mean_t = adj_mean.transpose();
        let degrees_hat = graph.with_self_loops().weighted_degrees();
        Self {
            adj_norm,
            adj_mean,
            adj_mean_t,
            features,
            labels,
            num_classes,
            train_nodes,
            val_nodes,
            test_nodes,
            degrees_hat,
            cache_key: NEXT_DATASET_KEY.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Builds a dataset for decoupled backbones (SGC/SIGN/S²GC/GBP) and
    /// label-propagation strategies only: computes `adj_norm` and
    /// `degrees_hat` but leaves `adj_mean`/`adj_mean_t` empty.
    ///
    /// FedGTA itself touches only `adj_norm` (non-parametric label
    /// propagation) and `degrees_hat` (smoothing confidence), so with a
    /// decoupled model a client never reads the mean-aggregation
    /// matrices — skipping them cuts per-client adjacency memory ~3×,
    /// which is what makes the 10⁷-node scale run fit. Message-passing
    /// models (GraphSAGE) need [`GraphDataset::new`].
    pub fn for_decoupled(
        graph: &Csr,
        features: Matrix,
        labels: Vec<u32>,
        num_classes: usize,
        train_nodes: Vec<u32>,
        val_nodes: Vec<u32>,
        test_nodes: Vec<u32>,
    ) -> Self {
        assert_eq!(graph.num_nodes(), features.rows(), "feature row mismatch");
        assert_eq!(graph.num_nodes(), labels.len(), "label length mismatch");
        let adj_norm = normalized_adjacency(graph, NormKind::Symmetric);
        let degrees_hat = graph.with_self_loops().weighted_degrees();
        let n = graph.num_nodes();
        Self {
            adj_norm,
            adj_mean: Csr::empty(n),
            adj_mean_t: Csr::empty(n),
            features,
            labels,
            num_classes,
            train_nodes,
            val_nodes,
            test_nodes,
            degrees_hat,
            cache_key: NEXT_DATASET_KEY.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }

    /// Input feature dimension.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }
}

/// FedGL-style soft pseudo-label supervision.
#[derive(Debug, Clone)]
pub struct PseudoLabels {
    /// Soft targets per node (`n × |Y|`); rows outside `mask` are ignored.
    pub targets: Matrix,
    /// Which nodes carry a pseudo-label.
    pub mask: Vec<bool>,
    /// Loss weight λ.
    pub weight: f32,
}

/// Gradient-modification hook: `f(current_params, &mut grads)`.
pub type GradHook<'a> = &'a mut dyn FnMut(&[f32], &mut [f32]);

/// Penultimate-representation hook: `f(batch_node_ids,
/// penultimate_batch) -> extra_gradient` (same shape as the batch).
pub type HiddenHook<'a> = &'a mut dyn FnMut(&[u32], &Matrix) -> Matrix;

/// Auxiliary-objective hooks a federated strategy can inject into local
/// training. All fields default to `None` ([`TrainHooks::none`]).
#[derive(Default)]
pub struct TrainHooks<'a> {
    /// Applied to the flat gradient before each optimizer step.
    /// FedProx/Scaffold/FedDC plug in here.
    pub grad_hook: Option<GradHook<'a>>,
    /// Returns an extra gradient on the penultimate representation.
    /// MOON's model-contrastive loss plugs in here.
    pub hidden_hook: Option<HiddenHook<'a>>,
    /// Soft pseudo-label supervision on unlabeled nodes (FedGL).
    pub pseudo: Option<&'a PseudoLabels>,
}

impl<'a> TrainHooks<'a> {
    /// No auxiliary objectives (plain local training).
    pub fn none() -> Self {
        Self::default()
    }
}

/// Splits `nodes` into shuffled mini-batches of `batch_size`
/// (`0` = single full batch). Returns owned batches.
pub fn make_batches(
    nodes: &[u32],
    batch_size: usize,
    rng: &mut rand::rngs::StdRng,
) -> Vec<Vec<u32>> {
    use rand::seq::SliceRandom;
    let mut order = nodes.to_vec();
    order.shuffle(rng);
    if batch_size == 0 || batch_size >= order.len() {
        return vec![order];
    }
    order.chunks(batch_size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedgta_graph::EdgeList;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> GraphDataset {
        let mut el = EdgeList::new(4);
        el.push_undirected(0, 1).unwrap();
        el.push_undirected(2, 3).unwrap();
        GraphDataset::new(
            &el.to_csr(),
            Matrix::zeros(4, 3),
            vec![0, 0, 1, 1],
            2,
            vec![0, 2],
            vec![1],
            vec![3],
        )
    }

    #[test]
    fn dataset_builds_both_norms() {
        let d = tiny();
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_features(), 3);
        // Row-stochastic rows sum to 1.
        for u in 0..4u32 {
            let s: f32 = d.adj_mean.neighbor_weights(u).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn decoupled_dataset_matches_full_on_shared_fields() {
        let mut el = EdgeList::new(4);
        el.push_undirected(0, 1).unwrap();
        el.push_undirected(2, 3).unwrap();
        let g = el.to_csr();
        let full = tiny();
        let lean = GraphDataset::for_decoupled(
            &g,
            Matrix::zeros(4, 3),
            vec![0, 0, 1, 1],
            2,
            vec![0, 2],
            vec![1],
            vec![3],
        );
        assert_eq!(lean.adj_norm, full.adj_norm);
        assert_eq!(lean.degrees_hat, full.degrees_hat);
        assert_eq!(lean.adj_mean.num_edges(), 0);
        assert_eq!(lean.adj_mean_t.num_edges(), 0);
        assert_ne!(lean.cache_key, full.cache_key);
    }

    #[test]
    fn cache_keys_are_unique_per_construction() {
        let a = tiny();
        let b = tiny();
        assert_ne!(a.cache_key, b.cache_key);
        let c = a.clone();
        assert_eq!(a.cache_key, c.cache_key);
    }

    #[test]
    fn batches_cover_all_nodes() {
        let nodes: Vec<u32> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let batches = make_batches(&nodes, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<u32> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, nodes);
        // Full-batch mode.
        let full = make_batches(&nodes, 0, &mut rng);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].len(), 10);
    }
}
