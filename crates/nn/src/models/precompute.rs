//! Propagated-feature pipelines for the decoupled backbones (paper §2.2).
//!
//! All pipelines share the hop sequence `X⁽⁰⁾ … X⁽ᵏ⁾` with
//! `X⁽ˡ⁾ = Ãˡ X` under the symmetric normalization; they differ only in
//! how hops are combined:
//!
//! - **SGC**: take the last hop `X⁽ᵏ⁾`;
//! - **SIGN**: concatenate all hops;
//! - **S²GC**: average all hops;
//! - **GBP**: weighted average with `wₗ = β(1−β)ˡ`.

use crate::tensor::Matrix;
use fedgta_graph::spmm::propagate_steps_into;
use fedgta_graph::Csr;

/// How hop features are combined into the model input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecomputeKind {
    /// `X⁽ᵏ⁾` (SGC).
    Sgc,
    /// `[X⁽⁰⁾ ‖ … ‖ X⁽ᵏ⁾]` (SIGN).
    Sign,
    /// `(1/(k+1)) Σ X⁽ˡ⁾` (S²GC).
    S2gc,
    /// `Σ β(1−β)ˡ X⁽ˡ⁾` (GBP).
    Gbp {
        /// Decay coefficient β ∈ (0, 1].
        beta: f32,
    },
}

impl PrecomputeKind {
    /// The input dimension the combined features have for `f` raw features
    /// and `k` hops.
    pub fn out_dim(self, f: usize, k: usize) -> usize {
        match self {
            PrecomputeKind::Sign => f * (k + 1),
            _ => f,
        }
    }
}

/// Computes all hop features `[X⁽⁰⁾, …, X⁽ᵏ⁾]` under `adj_norm`.
///
/// Uses the borrowing [`propagate_steps_into`] so only the `k` propagated
/// hops are produced by the kernel; hop 0 is a single clone of the input.
pub fn hop_features(adj_norm: &Csr, features: &Matrix, k: usize) -> Vec<Matrix> {
    let mut hops: Vec<Vec<f32>> = Vec::new();
    propagate_steps_into(adj_norm, features.as_slice(), features.cols(), k, &mut hops)
        .expect("adjacency and features share the node count");
    let mut out = Vec::with_capacity(k + 1);
    out.push(features.clone());
    out.extend(
        hops.into_iter()
            .map(|s| Matrix::from_vec(features.rows(), features.cols(), s)),
    );
    out
}

/// Combines hop features per `kind` into the model input matrix.
pub fn combine(kind: PrecomputeKind, hops: &[Matrix]) -> Matrix {
    let k = hops.len() - 1;
    match kind {
        PrecomputeKind::Sgc => hops[k].clone(),
        PrecomputeKind::Sign => {
            let mut out = hops[0].clone();
            for h in &hops[1..] {
                out = out.hcat(h);
            }
            out
        }
        PrecomputeKind::S2gc => {
            let mut out = hops[0].clone();
            for h in &hops[1..] {
                out.axpy(1.0, h);
            }
            out.scale(1.0 / (k as f32 + 1.0));
            out
        }
        PrecomputeKind::Gbp { beta } => {
            let mut out = hops[0].clone();
            out.scale(beta);
            let mut w = beta;
            for h in &hops[1..] {
                w *= 1.0 - beta;
                out.axpy(w, h);
            }
            out
        }
    }
}

/// One-shot helper: propagate and combine.
pub fn precompute(kind: PrecomputeKind, adj_norm: &Csr, features: &Matrix, k: usize) -> Matrix {
    combine(kind, &hop_features(adj_norm, features, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedgta_graph::{normalized_adjacency, EdgeList, NormKind};

    fn setup() -> (Csr, Matrix) {
        let mut el = EdgeList::new(3);
        el.push_undirected(0, 1).unwrap();
        el.push_undirected(1, 2).unwrap();
        let a = normalized_adjacency(&el.to_csr(), NormKind::Symmetric);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        (a, x)
    }

    #[test]
    fn hop_zero_is_input() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0], x);
    }

    #[test]
    fn sgc_takes_last_hop() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        assert_eq!(combine(PrecomputeKind::Sgc, &hops), hops[2]);
    }

    #[test]
    fn sign_concatenates_dims() {
        let (a, x) = setup();
        let p = precompute(PrecomputeKind::Sign, &a, &x, 2);
        assert_eq!(p.shape(), (3, 6));
        assert_eq!(PrecomputeKind::Sign.out_dim(2, 2), 6);
    }

    #[test]
    fn s2gc_is_hop_mean() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        let p = combine(PrecomputeKind::S2gc, &hops);
        let expect = (hops[0].get(1, 1) + hops[1].get(1, 1) + hops[2].get(1, 1)) / 3.0;
        assert!((p.get(1, 1) - expect).abs() < 1e-6);
    }

    #[test]
    fn gbp_weights_decay_geometrically() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        let beta = 0.5f32;
        let p = combine(PrecomputeKind::Gbp { beta }, &hops);
        let expect = 0.5 * hops[0].get(0, 0) + 0.25 * hops[1].get(0, 0) + 0.125 * hops[2].get(0, 0);
        assert!((p.get(0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn beta_one_reduces_gbp_to_raw_features() {
        let (a, x) = setup();
        let p = precompute(PrecomputeKind::Gbp { beta: 1.0 }, &a, &x, 3);
        assert_eq!(p, x);
    }
}
