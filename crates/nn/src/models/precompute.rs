//! Propagated-feature pipelines for the decoupled backbones (paper §2.2).
//!
//! All pipelines share the hop sequence `X⁽⁰⁾ … X⁽ᵏ⁾` with
//! `X⁽ˡ⁾ = Ãˡ X` under the symmetric normalization; they differ only in
//! how hops are combined:
//!
//! - **SGC**: take the last hop `X⁽ᵏ⁾`;
//! - **SIGN**: concatenate all hops;
//! - **S²GC**: average all hops;
//! - **GBP**: weighted average with `wₗ = β(1−β)ˡ`.

use crate::tensor::Matrix;
use fedgta_graph::io::IoError;
use fedgta_graph::spmm::propagate_steps_into;
use fedgta_graph::store::GraphStore;
use fedgta_graph::Csr;

/// How hop features are combined into the model input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecomputeKind {
    /// `X⁽ᵏ⁾` (SGC).
    Sgc,
    /// `[X⁽⁰⁾ ‖ … ‖ X⁽ᵏ⁾]` (SIGN).
    Sign,
    /// `(1/(k+1)) Σ X⁽ˡ⁾` (S²GC).
    S2gc,
    /// `Σ β(1−β)ˡ X⁽ˡ⁾` (GBP).
    Gbp {
        /// Decay coefficient β ∈ (0, 1].
        beta: f32,
    },
}

impl PrecomputeKind {
    /// The input dimension the combined features have for `f` raw features
    /// and `k` hops.
    pub fn out_dim(self, f: usize, k: usize) -> usize {
        match self {
            PrecomputeKind::Sign => f * (k + 1),
            _ => f,
        }
    }
}

/// Computes all hop features `[X⁽⁰⁾, …, X⁽ᵏ⁾]` under `adj_norm`.
///
/// Uses the borrowing [`propagate_steps_into`] so only the `k` propagated
/// hops are produced by the kernel; hop 0 is a single clone of the input.
pub fn hop_features(adj_norm: &Csr, features: &Matrix, k: usize) -> Vec<Matrix> {
    let mut hops: Vec<Vec<f32>> = Vec::new();
    propagate_steps_into(adj_norm, features.as_slice(), features.cols(), k, &mut hops)
        .expect("adjacency and features share the node count");
    let mut out = Vec::with_capacity(k + 1);
    out.push(features.clone());
    out.extend(
        hops.into_iter()
            .map(|s| Matrix::from_vec(features.rows(), features.cols(), s)),
    );
    out
}

/// Combines hop features per `kind` into the model input matrix.
pub fn combine(kind: PrecomputeKind, hops: &[Matrix]) -> Matrix {
    let k = hops.len() - 1;
    match kind {
        PrecomputeKind::Sgc => hops[k].clone(),
        PrecomputeKind::Sign => {
            let mut out = hops[0].clone();
            for h in &hops[1..] {
                out = out.hcat(h);
            }
            out
        }
        PrecomputeKind::S2gc => {
            let mut out = hops[0].clone();
            for h in &hops[1..] {
                out.axpy(1.0, h);
            }
            out.scale(1.0 / (k as f32 + 1.0));
            out
        }
        PrecomputeKind::Gbp { beta } => {
            let mut out = hops[0].clone();
            out.scale(beta);
            let mut w = beta;
            for h in &hops[1..] {
                w *= 1.0 - beta;
                out.axpy(w, h);
            }
            out
        }
    }
}

/// One-shot helper: propagate and combine.
pub fn precompute(kind: PrecomputeKind, adj_norm: &Csr, features: &Matrix, k: usize) -> Matrix {
    combine(kind, &hop_features(adj_norm, features, k))
}

/// Out-of-core sibling of [`precompute`]: the adjacency is consumed
/// through a [`GraphStore`], so a file-backed graph is streamed tile by
/// tile and never materialized.
///
/// The per-row SpMM kernel is shared with the in-memory path and the hop
/// combination applies the same operations in the same order, so for the
/// equivalent graph the result is **bit-identical** to [`precompute`] at
/// any thread count. Hop retention is kind-aware: SGC ping-pongs two
/// buffers, S²GC/GBP fold hops into a running accumulator (three dense
/// matrices resident), and only SIGN — whose output is all hops
/// concatenated — holds `k + 1`.
pub fn precompute_store(
    kind: PrecomputeKind,
    adj_norm: &GraphStore,
    features: &Matrix,
    k: usize,
) -> Result<Matrix, IoError> {
    let (n, cols) = features.shape();
    assert_eq!(adj_norm.num_nodes(), n, "adjacency/feature row mismatch");
    match kind {
        PrecomputeKind::Sgc => {
            let mut out = vec![0f32; n * cols];
            let mut scratch = vec![0f32; n * cols];
            adj_norm.propagate_k_into(features.as_slice(), cols, k, &mut out, &mut scratch)?;
            Ok(Matrix::from_vec(n, cols, out))
        }
        PrecomputeKind::Sign => {
            let mut out = features.clone();
            let mut cur = features.clone();
            let mut next = vec![0f32; n * cols];
            for _ in 0..k {
                adj_norm.spmm_into(cur.as_slice(), cols, &mut next)?;
                cur = Matrix::from_vec(n, cols, next.clone());
                out = out.hcat(&cur);
            }
            Ok(out)
        }
        PrecomputeKind::S2gc => {
            let mut out = features.clone();
            let mut cur = features.clone();
            let mut next = vec![0f32; n * cols];
            for _ in 0..k {
                adj_norm.spmm_into(cur.as_slice(), cols, &mut next)?;
                cur = Matrix::from_vec(n, cols, std::mem::replace(&mut next, vec![0f32; n * cols]));
                out.axpy(1.0, &cur);
            }
            out.scale(1.0 / (k as f32 + 1.0));
            Ok(out)
        }
        PrecomputeKind::Gbp { beta } => {
            let mut out = features.clone();
            out.scale(beta);
            let mut cur = features.clone();
            let mut next = vec![0f32; n * cols];
            let mut w = beta;
            for _ in 0..k {
                adj_norm.spmm_into(cur.as_slice(), cols, &mut next)?;
                cur = Matrix::from_vec(n, cols, std::mem::replace(&mut next, vec![0f32; n * cols]));
                w *= 1.0 - beta;
                out.axpy(w, &cur);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedgta_graph::{normalized_adjacency, EdgeList, NormKind};

    fn setup() -> (Csr, Matrix) {
        let mut el = EdgeList::new(3);
        el.push_undirected(0, 1).unwrap();
        el.push_undirected(1, 2).unwrap();
        let a = normalized_adjacency(&el.to_csr(), NormKind::Symmetric);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        (a, x)
    }

    #[test]
    fn hop_zero_is_input() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0], x);
    }

    #[test]
    fn sgc_takes_last_hop() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        assert_eq!(combine(PrecomputeKind::Sgc, &hops), hops[2]);
    }

    #[test]
    fn sign_concatenates_dims() {
        let (a, x) = setup();
        let p = precompute(PrecomputeKind::Sign, &a, &x, 2);
        assert_eq!(p.shape(), (3, 6));
        assert_eq!(PrecomputeKind::Sign.out_dim(2, 2), 6);
    }

    #[test]
    fn s2gc_is_hop_mean() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        let p = combine(PrecomputeKind::S2gc, &hops);
        let expect = (hops[0].get(1, 1) + hops[1].get(1, 1) + hops[2].get(1, 1)) / 3.0;
        assert!((p.get(1, 1) - expect).abs() < 1e-6);
    }

    #[test]
    fn gbp_weights_decay_geometrically() {
        let (a, x) = setup();
        let hops = hop_features(&a, &x, 2);
        let beta = 0.5f32;
        let p = combine(PrecomputeKind::Gbp { beta }, &hops);
        let expect = 0.5 * hops[0].get(0, 0) + 0.25 * hops[1].get(0, 0) + 0.125 * hops[2].get(0, 0);
        assert!((p.get(0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn beta_one_reduces_gbp_to_raw_features() {
        let (a, x) = setup();
        let p = precompute(PrecomputeKind::Gbp { beta: 1.0 }, &a, &x, 3);
        assert_eq!(p, x);
    }

    const ALL_KINDS: [PrecomputeKind; 4] = [
        PrecomputeKind::Sgc,
        PrecomputeKind::Sign,
        PrecomputeKind::S2gc,
        PrecomputeKind::Gbp { beta: 0.3 },
    ];

    #[test]
    fn store_precompute_matches_in_memory_bitwise() {
        let (a, x) = setup();
        let mem = fedgta_graph::store::GraphStore::Mem(a.clone());
        for kind in ALL_KINDS {
            for k in 0..4 {
                let want = precompute(kind, &a, &x, k);
                let got = precompute_store(kind, &mem, &x, k).unwrap();
                assert_eq!(got, want, "{kind:?} k={k}");
            }
        }
    }

    #[test]
    fn disk_precompute_matches_in_memory_bitwise() {
        let (a, x) = setup();
        let path = std::env::temp_dir().join(format!(
            "fedgta-precompute-{}-{:?}.fgta2",
            std::process::id(),
            std::thread::current().id()
        ));
        fedgta_graph::io::write_csr_v2(&path, &a, 2).unwrap();
        let disk = fedgta_graph::store::GraphStore::open(&path).unwrap();
        for kind in ALL_KINDS {
            let want = precompute(kind, &a, &x, 3);
            let got = precompute_store(kind, &disk, &x, 3).unwrap();
            assert_eq!(got, want, "{kind:?}");
        }
        drop(disk);
        std::fs::remove_file(&path).unwrap();
    }
}
