//! GCN (Kipf & Welling 2017): coupled message passing with the symmetric
//! normalization, `softmax(Â σ(Â X W₀) W₁)` for two layers (generalized to
//! `L` layers).
//!
//! Parameters live in an internal [`Mlp`] used purely as flat storage;
//! forward/backward interleave sparse propagation with the linear layers.
//! Because `Â` is symmetric, the backward propagation reuses the same
//! matrix (`Âᵀ = Â`).

use super::common::{GraphDataset, TrainHooks};
use super::GraphModel;
use crate::loss::{soft_ce, softmax_ce};
use crate::mlp::Mlp;
use crate::models::ModelConfig;
use crate::ops::{
    col_sums_into, matmul_bias_into, matmul_bias_relu_into, matmul_nt_into, matmul_tn_into,
    relu_backward_inplace, softmax_rows, spmm_csr_into,
};
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A full-batch GCN.
#[derive(Clone)]
pub struct Gcn {
    lin: Mlp,
    dropout: f32,
    rng: StdRng,
    /// Scratch arena for activations/gradients (empty after `clone()`).
    ws: Workspace,
}

struct GcnCache {
    /// Propagated input to each linear layer (`P_l = Â X_l`).
    propagated: Vec<Matrix>,
    /// Post-ReLU (and dropout) hidden outputs.
    hidden_out: Vec<Matrix>,
    /// Inverted-dropout masks for hidden layers.
    dropout_masks: Vec<Option<Vec<f32>>>,
}

impl GcnCache {
    /// Returns every cached buffer to the workspace for the next epoch.
    fn recycle(self, ws: &mut Workspace) {
        for m in self.propagated {
            ws.give_matrix(m);
        }
        for m in self.hidden_out {
            ws.give_matrix(m);
        }
        for m in self.dropout_masks.into_iter().flatten() {
            ws.give(m);
        }
    }
}

impl Gcn {
    /// Builds an `L`-layer GCN (`cfg.layers`, min 2 recommended).
    pub fn new(cfg: &ModelConfig, in_dim: usize, num_classes: usize) -> Self {
        let mut dims = vec![in_dim];
        for _ in 0..cfg.layers.saturating_sub(1) {
            dims.push(cfg.hidden);
        }
        dims.push(num_classes);
        Self {
            lin: Mlp::new(&dims, 0.0, cfg.seed),
            dropout: cfg.dropout,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xda94_2042_e4dd_58b5),
            ws: Workspace::new(),
        }
    }

    fn forward(&mut self, data: &GraphDataset, train: bool) -> (Matrix, GcnCache) {
        let layers = self.lin.num_layers();
        let n = data.num_nodes();
        let mut ws = std::mem::take(&mut self.ws);
        let mut propagated = Vec::with_capacity(layers);
        let mut hidden_out: Vec<Matrix> = Vec::with_capacity(layers - 1);
        let mut dropout_masks = Vec::with_capacity(layers - 1);
        let mut logits = None;
        for l in 0..layers {
            let src = if l == 0 { &data.features } else { &hidden_out[l - 1] };
            let mut p = ws.take_matrix(n, src.cols());
            spmm_csr_into(&data.adj_norm, src, &mut p);
            let w = self.lin.weight_view(l);
            let mut z = ws.take_matrix(n, w.cols());
            if l + 1 < layers {
                // Fused `relu(P·W + b)` epilogue; dropout rides on top.
                matmul_bias_relu_into(p.view(), w, self.lin.bias(l), z.as_mut_slice());
                let mask = if train && self.dropout > 0.0 {
                    let keep = 1.0 - self.dropout;
                    let inv = 1.0 / keep;
                    let mut mask = ws.take(z.rows() * z.cols());
                    for (m, v) in mask.iter_mut().zip(z.as_mut_slice()) {
                        if self.rng.random::<f32>() < keep {
                            *m = inv;
                            *v *= inv;
                        } else {
                            *v = 0.0;
                        }
                    }
                    Some(mask)
                } else {
                    None
                };
                dropout_masks.push(mask);
                hidden_out.push(z);
            } else {
                matmul_bias_into(p.view(), w, self.lin.bias(l), z.as_mut_slice());
                logits = Some(z);
            }
            propagated.push(p);
        }
        self.ws = ws;
        (
            logits.expect("≥1 layer"),
            GcnCache {
                propagated,
                hidden_out,
                dropout_masks,
            },
        )
    }

    fn backward(
        &mut self,
        data: &GraphDataset,
        cache: &GcnCache,
        d_logits: &Matrix,
        hidden_grad: Option<&Matrix>,
    ) -> Vec<f32> {
        let layers = self.lin.num_layers();
        let mut ws = std::mem::take(&mut self.ws);
        let mut grads = ws.take(self.lin.num_params());
        let mut d_out = ws.take_matrix(d_logits.rows(), d_logits.cols());
        d_out.copy_from(d_logits);
        for l in (0..layers).rev() {
            let p = &cache.propagated[l];
            let (ws_off, bs, be) = self.lin.layer_offsets(l);
            // dW/db land directly in the flat gradient buffer.
            matmul_tn_into(p.view(), d_out.view(), &mut grads[ws_off..bs]);
            col_sums_into(&d_out, &mut grads[bs..be]);
            let w = self.lin.weight_view(l);
            let mut dp = ws.take_matrix(d_out.rows(), w.rows());
            matmul_nt_into(d_out.view(), w, dp.as_mut_slice());
            if l == layers - 1 {
                if let Some(hg) = hidden_grad {
                    dp.axpy(1.0, hg);
                }
            }
            if l == 0 {
                ws.give_matrix(dp);
                break;
            }
            // dX_l = Âᵀ dP = Â dP (symmetric normalization).
            let mut dx = ws.take_matrix(dp.rows(), dp.cols());
            spmm_csr_into(&data.adj_norm, &dp, &mut dx);
            ws.give_matrix(dp);
            if let Some(mask) = &cache.dropout_masks[l - 1] {
                for (g, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
                    *g *= m;
                }
            }
            relu_backward_inplace(&mut dx, &cache.hidden_out[l - 1]);
            ws.give_matrix(std::mem::replace(&mut d_out, dx));
        }
        ws.give_matrix(d_out);
        self.ws = ws;
        grads
    }
}

impl GraphModel for Gcn {
    fn num_params(&self) -> usize {
        self.lin.num_params()
    }

    fn params(&self) -> Vec<f32> {
        self.lin.params().to_vec()
    }

    fn set_params(&mut self, p: &[f32]) {
        self.lin.set_params(p);
    }

    fn train_epoch(
        &mut self,
        data: &GraphDataset,
        opt: &mut dyn Optimizer,
        hooks: &mut TrainHooks<'_>,
    ) -> f32 {
        let (logits, cache) = self.forward(data, true);
        let (loss, mut d_logits) = softmax_ce(&logits, &data.labels, &data.train_nodes);
        if let Some(pl) = hooks.pseudo.as_ref() {
            let rows: Vec<u32> = (0..data.num_nodes() as u32)
                .filter(|&i| pl.mask[i as usize])
                .collect();
            if !rows.is_empty() {
                let (_, d_extra) = soft_ce(&logits, &pl.targets, &rows, pl.weight);
                d_logits.axpy(1.0, &d_extra);
            }
        }
        let all_nodes: Vec<u32> = (0..data.num_nodes() as u32).collect();
        let hidden_grad = hooks
            .hidden_hook
            .as_mut()
            .map(|h| h(&all_nodes, cache.propagated.last().expect("≥1 layer")));
        let mut grads = self.backward(data, &cache, &d_logits, hidden_grad.as_ref());
        if let Some(gh) = hooks.grad_hook.as_mut() {
            gh(self.lin.params(), &mut grads);
        }
        opt.step(self.lin.params_mut(), &grads);
        cache.recycle(&mut self.ws);
        self.ws.give_matrix(logits);
        self.ws.give_matrix(d_logits);
        self.ws.give(grads);
        loss
    }

    fn predict(&mut self, data: &GraphDataset) -> Matrix {
        let (logits, cache) = self.forward(data, false);
        let out = softmax_rows(&logits);
        cache.recycle(&mut self.ws);
        self.ws.give_matrix(logits);
        out
    }

    fn penultimate(&mut self, data: &GraphDataset) -> Matrix {
        let (logits, mut cache) = self.forward(data, false);
        let h = cache.propagated.pop().expect("≥1 layer");
        cache.recycle(&mut self.ws);
        self.ws.give_matrix(logits);
        h
    }

    fn clone_box(&self) -> Box<dyn GraphModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::models::decoupled::tests::toy_dataset;
    use crate::models::ModelKind;
    use crate::optim::Adam;

    fn cfg() -> ModelConfig {
        ModelConfig {
            kind: ModelKind::Gcn,
            hidden: 16,
            layers: 2,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn gcn_learns_the_toy_task() {
        let data = toy_dataset(10);
        let mut m = Gcn::new(&cfg(), data.num_features(), 2);
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..60 {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        }
        let acc = accuracy(&m.predict(&data), &data.labels, &data.test_nodes);
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn gcn_gradient_matches_finite_differences() {
        let data = toy_dataset(11);
        let mut m = Gcn::new(&cfg(), data.num_features(), 2);
        let (logits, cache) = m.forward(&data, false);
        let (_, d_logits) = softmax_ce(&logits, &data.labels, &data.train_nodes);
        let grads = m.backward(&data, &cache, &d_logits, None);
        let eps = 1e-2f32;
        let n = m.num_params();
        for idx in (0..n).step_by(n / 13 + 1) {
            let mut p = m.params();
            let orig = p[idx];
            p[idx] = orig + eps;
            m.set_params(&p);
            let (lp, _) = softmax_ce(&m.forward(&data, false).0, &data.labels, &data.train_nodes);
            p[idx] = orig - eps;
            m.set_params(&p);
            let (lm, _) = softmax_ce(&m.forward(&data, false).0, &data.labels, &data.train_nodes);
            p[idx] = orig;
            m.set_params(&p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 2e-2,
                "param {idx}: fd {fd} vs {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn penultimate_shape_is_hidden_width() {
        let data = toy_dataset(12);
        let mut m = Gcn::new(&cfg(), data.num_features(), 2);
        let h = m.penultimate(&data);
        assert_eq!(h.shape(), (data.num_nodes(), 16));
    }
}
