//! GCN (Kipf & Welling 2017): coupled message passing with the symmetric
//! normalization, `softmax(Â σ(Â X W₀) W₁)` for two layers (generalized to
//! `L` layers).
//!
//! Parameters live in an internal [`Mlp`] used purely as flat storage;
//! forward/backward interleave sparse propagation with the linear layers.
//! Because `Â` is symmetric, the backward propagation reuses the same
//! matrix (`Âᵀ = Â`).

use super::common::{GraphDataset, TrainHooks};
use super::GraphModel;
use crate::loss::{soft_ce, softmax_ce};
use crate::mlp::Mlp;
use crate::models::ModelConfig;
use crate::ops::{
    add_bias, col_sums, matmul, matmul_nt, matmul_tn, relu_backward_inplace, relu_inplace,
    softmax_rows, spmm_csr,
};
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A full-batch GCN.
#[derive(Clone)]
pub struct Gcn {
    lin: Mlp,
    dropout: f32,
    rng: StdRng,
}

struct GcnCache {
    /// Propagated input to each linear layer (`P_l = Â X_l`).
    propagated: Vec<Matrix>,
    /// Post-ReLU (and dropout) hidden outputs.
    hidden_out: Vec<Matrix>,
    /// Inverted-dropout masks for hidden layers.
    dropout_masks: Vec<Option<Vec<f32>>>,
}

impl Gcn {
    /// Builds an `L`-layer GCN (`cfg.layers`, min 2 recommended).
    pub fn new(cfg: &ModelConfig, in_dim: usize, num_classes: usize) -> Self {
        let mut dims = vec![in_dim];
        for _ in 0..cfg.layers.saturating_sub(1) {
            dims.push(cfg.hidden);
        }
        dims.push(num_classes);
        Self {
            lin: Mlp::new(&dims, 0.0, cfg.seed),
            dropout: cfg.dropout,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xda94_2042_e4dd_58b5),
        }
    }

    fn forward(&mut self, data: &GraphDataset, train: bool) -> (Matrix, GcnCache) {
        let layers = self.lin.num_layers();
        let mut propagated = Vec::with_capacity(layers);
        let mut hidden_out = Vec::with_capacity(layers - 1);
        let mut dropout_masks = Vec::with_capacity(layers - 1);
        let mut cur = data.features.clone();
        for l in 0..layers {
            let p = spmm_csr(&data.adj_norm, &cur);
            let mut z = matmul(&p, &self.lin.weight(l));
            add_bias(&mut z, self.lin.bias(l));
            propagated.push(p);
            if l + 1 < layers {
                relu_inplace(&mut z);
                let mask = if train && self.dropout > 0.0 {
                    let keep = 1.0 - self.dropout;
                    let inv = 1.0 / keep;
                    let mut mask = vec![0f32; z.rows() * z.cols()];
                    for (m, v) in mask.iter_mut().zip(z.as_mut_slice()) {
                        if self.rng.random::<f32>() < keep {
                            *m = inv;
                            *v *= inv;
                        } else {
                            *v = 0.0;
                        }
                    }
                    Some(mask)
                } else {
                    None
                };
                dropout_masks.push(mask);
                hidden_out.push(z.clone());
            }
            cur = z;
        }
        (
            cur,
            GcnCache {
                propagated,
                hidden_out,
                dropout_masks,
            },
        )
    }

    fn backward(
        &self,
        data: &GraphDataset,
        cache: &GcnCache,
        d_logits: &Matrix,
        hidden_grad: Option<&Matrix>,
    ) -> Vec<f32> {
        let layers = self.lin.num_layers();
        let mut grads = vec![0f32; self.lin.num_params()];
        let mut d_out = d_logits.clone();
        for l in (0..layers).rev() {
            let p = &cache.propagated[l];
            let dw = matmul_tn(p, &d_out);
            let db = col_sums(&d_out);
            let (ws, bs, be) = self.lin.layer_offsets(l);
            grads[ws..bs].copy_from_slice(dw.as_slice());
            grads[bs..be].copy_from_slice(&db);
            let mut dp = matmul_nt(&d_out, &self.lin.weight(l));
            if l == layers - 1 {
                if let Some(hg) = hidden_grad {
                    dp.axpy(1.0, hg);
                }
            }
            if l == 0 {
                break;
            }
            // dX_l = Âᵀ dP = Â dP (symmetric normalization).
            let mut dx = spmm_csr(&data.adj_norm, &dp);
            if let Some(mask) = &cache.dropout_masks[l - 1] {
                for (g, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
                    *g *= m;
                }
            }
            relu_backward_inplace(&mut dx, &cache.hidden_out[l - 1]);
            d_out = dx;
        }
        grads
    }
}

impl GraphModel for Gcn {
    fn num_params(&self) -> usize {
        self.lin.num_params()
    }

    fn params(&self) -> Vec<f32> {
        self.lin.params().to_vec()
    }

    fn set_params(&mut self, p: &[f32]) {
        self.lin.set_params(p);
    }

    fn train_epoch(
        &mut self,
        data: &GraphDataset,
        opt: &mut dyn Optimizer,
        hooks: &mut TrainHooks<'_>,
    ) -> f32 {
        let (logits, cache) = self.forward(data, true);
        let (loss, mut d_logits) = softmax_ce(&logits, &data.labels, &data.train_nodes);
        if let Some(pl) = hooks.pseudo.as_ref() {
            let rows: Vec<u32> = (0..data.num_nodes() as u32)
                .filter(|&i| pl.mask[i as usize])
                .collect();
            if !rows.is_empty() {
                let (_, d_extra) = soft_ce(&logits, &pl.targets, &rows, pl.weight);
                d_logits.axpy(1.0, &d_extra);
            }
        }
        let all_nodes: Vec<u32> = (0..data.num_nodes() as u32).collect();
        let hidden_grad = hooks
            .hidden_hook
            .as_mut()
            .map(|h| h(&all_nodes, cache.propagated.last().expect("≥1 layer")));
        let mut grads = self.backward(data, &cache, &d_logits, hidden_grad.as_ref());
        if let Some(gh) = hooks.grad_hook.as_mut() {
            gh(self.lin.params(), &mut grads);
        }
        opt.step(self.lin.params_mut(), &grads);
        loss
    }

    fn predict(&mut self, data: &GraphDataset) -> Matrix {
        let (logits, _) = self.forward(data, false);
        softmax_rows(&logits)
    }

    fn penultimate(&mut self, data: &GraphDataset) -> Matrix {
        let (_, cache) = self.forward(data, false);
        cache.propagated.last().expect("≥1 layer").clone()
    }

    fn clone_box(&self) -> Box<dyn GraphModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::models::decoupled::tests::toy_dataset;
    use crate::models::ModelKind;
    use crate::optim::Adam;

    fn cfg() -> ModelConfig {
        ModelConfig {
            kind: ModelKind::Gcn,
            hidden: 16,
            layers: 2,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn gcn_learns_the_toy_task() {
        let data = toy_dataset(10);
        let mut m = Gcn::new(&cfg(), data.num_features(), 2);
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..60 {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        }
        let acc = accuracy(&m.predict(&data), &data.labels, &data.test_nodes);
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn gcn_gradient_matches_finite_differences() {
        let data = toy_dataset(11);
        let mut m = Gcn::new(&cfg(), data.num_features(), 2);
        let (logits, cache) = m.forward(&data, false);
        let (_, d_logits) = softmax_ce(&logits, &data.labels, &data.train_nodes);
        let grads = m.backward(&data, &cache, &d_logits, None);
        let eps = 1e-2f32;
        let n = m.num_params();
        for idx in (0..n).step_by(n / 13 + 1) {
            let mut p = m.params();
            let orig = p[idx];
            p[idx] = orig + eps;
            m.set_params(&p);
            let (lp, _) = softmax_ce(&m.forward(&data, false).0, &data.labels, &data.train_nodes);
            p[idx] = orig - eps;
            m.set_params(&p);
            let (lm, _) = softmax_ce(&m.forward(&data, false).0, &data.labels, &data.train_nodes);
            p[idx] = orig;
            m.set_params(&p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 2e-2,
                "param {idx}: fd {fd} vs {}",
                grads[idx]
            );
        }
    }

    #[test]
    fn penultimate_shape_is_hidden_width() {
        let data = toy_dataset(12);
        let mut m = Gcn::new(&cfg(), data.num_features(), 2);
        let h = m.penultimate(&data);
        assert_eq!(h.shape(), (data.num_nodes(), 16));
    }
}
