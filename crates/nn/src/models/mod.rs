//! The paper's seven GNN backbones behind one [`GraphModel`] trait.
//!
//! | Model | Kind | Architecture |
//! |-------|------|--------------|
//! | GCN | coupled | `softmax(Â σ(Â X W₀) W₁)` |
//! | GraphSAGE | coupled | mean aggregator `σ([H ‖ ĀH] W)` per layer |
//! | SGC | decoupled | linear on `Âᵏ X` |
//! | SIGN | decoupled | MLP on `[X ‖ ÂX ‖ … ‖ Âᵏ X]` |
//! | S²GC | decoupled | MLP on `(1/(k+1)) Σ Âˡ X` |
//! | GBP | decoupled | MLP on `Σ β(1−β)ˡ Âˡ X` |
//! | GAMLP | decoupled | MLP on a learned softmax gate over hop features |
//!
//! Decoupled models precompute propagated features once per dataset
//! (cached by the dataset's identity key) — the scalability property the
//! paper's Table 1 relies on.

pub mod common;
pub mod decoupled;
pub mod gamlp;
pub mod gcn;
pub mod precompute;
pub mod sage;

pub use common::{GraphDataset, PseudoLabels, TrainHooks};
pub use decoupled::DecoupledModel;
pub use gamlp::Gamlp;
pub use gcn::Gcn;
pub use precompute::PrecomputeKind;
pub use sage::Sage;

use crate::optim::Optimizer;
use crate::tensor::Matrix;

/// A trainable node-classification model over a [`GraphDataset`].
///
/// All parameters live in one flat `f32` buffer so federated strategies
/// can aggregate models as opaque vectors. `predict`/`penultimate` take
/// `&mut self` because decoupled models lazily cache propagated features
/// per dataset.
pub trait GraphModel: Send {
    /// Total parameter count.
    fn num_params(&self) -> usize;
    /// Snapshot of the flat parameter buffer.
    fn params(&self) -> Vec<f32>;
    /// Replaces all parameters (length must match [`Self::num_params`]).
    fn set_params(&mut self, p: &[f32]);
    /// Runs one local training epoch; returns the mean supervised loss.
    fn train_epoch(
        &mut self,
        data: &GraphDataset,
        opt: &mut dyn Optimizer,
        hooks: &mut TrainHooks<'_>,
    ) -> f32;
    /// Softmax class probabilities for every node (`n × |Y|`).
    fn predict(&mut self, data: &GraphDataset) -> Matrix;
    /// [`Self::predict`] into a caller-provided buffer, reshaped as
    /// needed. The default delegates to `predict` (one allocation);
    /// decoupled backbones override it with a fully workspace-pooled
    /// path so warm calls perform **zero heap allocations** — the
    /// property FedGTA's per-round upload pipeline relies on.
    fn predict_into(&mut self, data: &GraphDataset, out: &mut Matrix) {
        *out = self.predict(data);
    }
    /// The penultimate representation for every node (MOON's contrastive
    /// anchor).
    fn penultimate(&mut self, data: &GraphDataset) -> Matrix;
    /// Clones into a boxed trait object.
    fn clone_box(&self) -> Box<dyn GraphModel>;
}

impl Clone for Box<dyn GraphModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Which backbone to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Graph convolutional network (coupled).
    Gcn,
    /// GraphSAGE with full-neighborhood mean aggregation (coupled).
    Sage,
    /// Simple graph convolution (decoupled, linear head).
    Sgc,
    /// Scalable inception GNN (decoupled, concatenated hops).
    Sign,
    /// Simple spectral graph convolution (decoupled, averaged hops).
    S2gc,
    /// Graph neural network via bidirectional propagation (decoupled,
    /// β-weighted hops).
    Gbp,
    /// Graph attention MLP (decoupled, learned hop gate).
    Gamlp,
}

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Sage => "SAGE",
            ModelKind::Sgc => "SGC",
            ModelKind::Sign => "SIGN",
            ModelKind::S2gc => "S2GC",
            ModelKind::Gbp => "GBP",
            ModelKind::Gamlp => "GAMLP",
        }
    }

    /// All seven backbones.
    pub fn all() -> [ModelKind; 7] {
        [
            ModelKind::Gcn,
            ModelKind::Sage,
            ModelKind::Sgc,
            ModelKind::Sign,
            ModelKind::S2gc,
            ModelKind::Gbp,
            ModelKind::Gamlp,
        ]
    }
}

/// Hyperparameters shared by all backbones.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Which backbone.
    pub kind: ModelKind,
    /// Hidden width.
    pub hidden: usize,
    /// Number of linear layers in the head (decoupled) or of graph
    /// convolutions (coupled).
    pub layers: usize,
    /// Feature-propagation steps `k` for decoupled models.
    pub k: usize,
    /// Dropout probability on hidden activations.
    pub dropout: f32,
    /// Mini-batch size for decoupled heads (`0` = full batch).
    pub batch_size: usize,
    /// GBP's β.
    pub beta: f32,
    /// GraphSAGE: neighbors sampled per node per training epoch
    /// (`0` = full-neighborhood mean aggregation).
    pub sample_neighbors: usize,
    /// Parameter-init / batching seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            kind: ModelKind::Sgc,
            hidden: 64,
            layers: 2,
            k: 3,
            dropout: 0.0,
            batch_size: 256,
            beta: 0.5,
            sample_neighbors: 0,
            seed: 0,
        }
    }
}

/// Builds a boxed model for `in_dim` input features and `num_classes`
/// output classes.
pub fn build_model(cfg: &ModelConfig, in_dim: usize, num_classes: usize) -> Box<dyn GraphModel> {
    match cfg.kind {
        ModelKind::Gcn => Box::new(Gcn::new(cfg, in_dim, num_classes)),
        ModelKind::Sage => Box::new(Sage::new(cfg, in_dim, num_classes)),
        ModelKind::Sgc | ModelKind::Sign | ModelKind::S2gc | ModelKind::Gbp => {
            Box::new(DecoupledModel::new(cfg, in_dim, num_classes))
        }
        ModelKind::Gamlp => Box::new(Gamlp::new(cfg, in_dim, num_classes)),
    }
}
