//! GraphSAGE (Hamilton et al. 2017) with full-neighborhood mean
//! aggregation: each layer computes `σ([H ‖ Ā H] W + b)` where `Ā` is the
//! row-stochastic mean aggregator.
//!
//! The original trains with sampled neighborhoods; full-neighborhood mean
//! aggregation is the expectation of that estimator and is exact on the
//! small per-client subgraphs this reproduction trains on (substitution
//! recorded in DESIGN.md). Backward through `Ā H` uses the precomputed
//! transpose `Āᵀ` from the dataset.
//!
//! Because each layer consumes the *doubled* width `[H ‖ ĀH]`, the layers
//! cannot share one chained [`Mlp`]; each layer owns a single-linear `Mlp`
//! used as flat parameter storage, and the model concatenates their
//! buffers for the federated flat-vector view.

use super::common::{GraphDataset, TrainHooks};
use super::GraphModel;
use crate::loss::{soft_ce, softmax_ce};
use crate::mlp::Mlp;
use crate::models::ModelConfig;
use crate::ops::{
    col_sums, matmul_bias_into, matmul_bias_relu_into, matmul_nt_into, matmul_tn,
    relu_backward_inplace, softmax_rows, spmm_csr,
};
use crate::optim::Optimizer;
use crate::tensor::{MatView, Matrix};
use fedgta_graph::{Csr, EdgeList};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A full-batch GraphSAGE-mean model with optional per-epoch neighbor
/// sampling (the original's training estimator; `0` = exact mean).
#[derive(Clone)]
pub struct Sage {
    /// One single-linear Mlp per SAGE layer: `2·d_l × d_{l+1}`.
    lins: Vec<Mlp>,
    dropout: f32,
    /// Neighbors sampled per node per training epoch (0 = all).
    sample: usize,
    rng: StdRng,
}

struct SageCache {
    /// Concatenated input `[H ‖ ĀH]` per layer.
    concat: Vec<Matrix>,
    hidden_out: Vec<Matrix>,
    dropout_masks: Vec<Option<Vec<f32>>>,
}

impl Sage {
    /// Builds an `L`-layer GraphSAGE (`cfg.layers`, min 1).
    pub fn new(cfg: &ModelConfig, in_dim: usize, num_classes: usize) -> Self {
        let layers = cfg.layers.max(1);
        let mut widths = vec![in_dim];
        for _ in 0..layers - 1 {
            widths.push(cfg.hidden);
        }
        widths.push(num_classes);
        let lins = (0..layers)
            .map(|l| Mlp::new(&[2 * widths[l], widths[l + 1]], 0.0, cfg.seed.wrapping_add(l as u64)))
            .collect();
        Self {
            lins,
            dropout: cfg.dropout,
            sample: cfg.sample_neighbors,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x5851_f42d_4c95_7f2d),
        }
    }

    /// Draws a sampled mean-aggregator from the full one: per node, keep
    /// up to `self.sample` random neighbors (self-loops always survive)
    /// re-normalized to a row-stochastic matrix. Returns `(Ā_s, Ā_sᵀ)`.
    fn sample_mean_adj(&mut self, data: &GraphDataset) -> (Csr, Csr) {
        let n = data.adj_mean.num_nodes();
        let mut el = EdgeList::with_capacity(n, n * (self.sample + 1));
        let mut pool: Vec<u32> = Vec::new();
        for u in 0..n as u32 {
            pool.clear();
            pool.extend(data.adj_mean.neighbors(u).iter().copied().filter(|&v| v != u));
            let take = self.sample.min(pool.len());
            pool.shuffle(&mut self.rng);
            // Self-loop plus sampled neighbors, uniformly weighted.
            let w = 1.0 / (take as f32 + 1.0);
            el.push_weighted(u, u, w).expect("in range");
            for &v in &pool[..take] {
                el.push_weighted(u, v, w).expect("in range");
            }
        }
        let a = el.to_csr();
        let t = a.transpose();
        (a, t)
    }

    fn num_layers(&self) -> usize {
        self.lins.len()
    }

    fn weight(&self, l: usize) -> MatView<'_> {
        self.lins[l].weight_view(0)
    }

    fn bias(&self, l: usize) -> &[f32] {
        self.lins[l].bias(0)
    }

    /// Flat offset of layer `l` inside the concatenated parameter view.
    fn flat_offset(&self, l: usize) -> usize {
        self.lins[..l].iter().map(|m| m.num_params()).sum()
    }

    fn forward(
        &mut self,
        data: &GraphDataset,
        adj: &Csr,
        train: bool,
    ) -> (Matrix, SageCache) {
        let layers = self.num_layers();
        let mut concat = Vec::with_capacity(layers);
        let mut hidden_out = Vec::with_capacity(layers - 1);
        let mut dropout_masks = Vec::with_capacity(layers - 1);
        let mut cur = data.features.clone();
        for l in 0..layers {
            let agg = spmm_csr(adj, &cur);
            let cat = cur.hcat(&agg);
            let w = self.weight(l);
            let mut z = Matrix::zeros(cat.rows(), w.cols());
            if l + 1 < layers {
                matmul_bias_relu_into(cat.view(), w, self.bias(l), z.as_mut_slice());
                concat.push(cat);
                let mask = if train && self.dropout > 0.0 {
                    let keep = 1.0 - self.dropout;
                    let inv = 1.0 / keep;
                    let mut mask = vec![0f32; z.rows() * z.cols()];
                    for (m, v) in mask.iter_mut().zip(z.as_mut_slice()) {
                        if self.rng.random::<f32>() < keep {
                            *m = inv;
                            *v *= inv;
                        } else {
                            *v = 0.0;
                        }
                    }
                    Some(mask)
                } else {
                    None
                };
                dropout_masks.push(mask);
                hidden_out.push(z.clone());
            } else {
                matmul_bias_into(cat.view(), w, self.bias(l), z.as_mut_slice());
                concat.push(cat);
            }
            cur = z;
        }
        (
            cur,
            SageCache {
                concat,
                hidden_out,
                dropout_masks,
            },
        )
    }

    fn backward(
        &self,
        adj_t: &Csr,
        cache: &SageCache,
        d_logits: &Matrix,
        hidden_grad: Option<&Matrix>,
    ) -> Vec<f32> {
        let layers = self.num_layers();
        let mut grads = vec![0f32; self.num_params()];
        let mut d_out = d_logits.clone();
        for l in (0..layers).rev() {
            let cat = &cache.concat[l];
            let dw = matmul_tn(cat, &d_out);
            let db = col_sums(&d_out);
            let off = self.flat_offset(l);
            let wlen = dw.as_slice().len();
            grads[off..off + wlen].copy_from_slice(dw.as_slice());
            grads[off + wlen..off + wlen + db.len()].copy_from_slice(&db);
            if l == 0 {
                break;
            }
            let w = self.weight(l);
            let mut dcat = Matrix::zeros(d_out.rows(), w.rows());
            matmul_nt_into(d_out.view(), w, dcat.as_mut_slice());
            let half = cat.cols() / 2;
            let (d_direct, d_agg) = dcat.hsplit(half);
            // dH = d_direct + Āᵀ d_agg.
            let mut dx = spmm_csr(adj_t, &d_agg);
            dx.axpy(1.0, &d_direct);
            if l == layers - 1 {
                if let Some(hg) = hidden_grad {
                    dx.axpy(1.0, hg);
                }
            }
            if let Some(mask) = &cache.dropout_masks[l - 1] {
                for (g, &m) in dx.as_mut_slice().iter_mut().zip(mask) {
                    *g *= m;
                }
            }
            relu_backward_inplace(&mut dx, &cache.hidden_out[l - 1]);
            d_out = dx;
        }
        grads
    }

    /// Hidden representation `H_{L-1}` entering the final layer.
    fn hidden_rep(&mut self, data: &GraphDataset) -> Matrix {
        let layers = self.num_layers();
        let mut cur = data.features.clone();
        for l in 0..layers - 1 {
            let agg = spmm_csr(&data.adj_mean, &cur);
            let cat = cur.hcat(&agg);
            let w = self.weight(l);
            let mut z = Matrix::zeros(cat.rows(), w.cols());
            matmul_bias_relu_into(cat.view(), w, self.bias(l), z.as_mut_slice());
            cur = z;
        }
        cur
    }
}

impl GraphModel for Sage {
    fn num_params(&self) -> usize {
        self.lins.iter().map(|m| m.num_params()).sum()
    }

    fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for m in &self.lins {
            out.extend_from_slice(m.params());
        }
        out
    }

    fn set_params(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.num_params(), "param length mismatch");
        let mut off = 0;
        for m in &mut self.lins {
            let n = m.num_params();
            m.set_params(&p[off..off + n]);
            off += n;
        }
    }

    fn train_epoch(
        &mut self,
        data: &GraphDataset,
        opt: &mut dyn Optimizer,
        hooks: &mut TrainHooks<'_>,
    ) -> f32 {
        // Per-epoch neighbor sampling (GraphSAGE's stochastic estimator).
        let sampled = (self.sample > 0).then(|| self.sample_mean_adj(data));
        let (adj, adj_t) = match &sampled {
            Some((a, t)) => (a, t),
            None => (&data.adj_mean, &data.adj_mean_t),
        };
        let adj = adj.clone();
        let adj_t = adj_t.clone();
        let (logits, cache) = self.forward(data, &adj, true);
        let (loss, mut d_logits) = softmax_ce(&logits, &data.labels, &data.train_nodes);
        if let Some(pl) = hooks.pseudo.as_ref() {
            let rows: Vec<u32> = (0..data.num_nodes() as u32)
                .filter(|&i| pl.mask[i as usize])
                .collect();
            if !rows.is_empty() {
                let (_, d_extra) = soft_ce(&logits, &pl.targets, &rows, pl.weight);
                d_logits.axpy(1.0, &d_extra);
            }
        }
        // MOON's anchor: the hidden representation entering the final layer.
        let hidden_grad = if let Some(h) = hooks.hidden_hook.as_mut() {
            let layers = self.lins.len();
            if layers >= 2 {
                let all: Vec<u32> = (0..data.num_nodes() as u32).collect();
                Some(h(&all, &cache.hidden_out[layers - 2]))
            } else {
                None
            }
        } else {
            None
        };
        let mut grads = self.backward(&adj_t, &cache, &d_logits, hidden_grad.as_ref());
        if let Some(gh) = hooks.grad_hook.as_mut() {
            let p = self.params();
            gh(&p, &mut grads);
        }
        // Step each layer's slice with one logical flat step.
        let mut flat = self.params();
        opt.step(&mut flat, &grads);
        self.set_params(&flat);
        loss
    }

    fn predict(&mut self, data: &GraphDataset) -> Matrix {
        // Inference always uses the exact full-neighborhood mean.
        let adj = data.adj_mean.clone();
        let (logits, _) = self.forward(data, &adj, false);
        softmax_rows(&logits)
    }

    fn penultimate(&mut self, data: &GraphDataset) -> Matrix {
        self.hidden_rep(data)
    }

    fn clone_box(&self) -> Box<dyn GraphModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::models::decoupled::tests::toy_dataset;
    use crate::models::ModelKind;
    use crate::optim::Adam;

    fn cfg() -> ModelConfig {
        ModelConfig {
            kind: ModelKind::Sage,
            hidden: 16,
            layers: 2,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn weight_shapes_are_doubled_inputs() {
        let m = Sage::new(&cfg(), 4, 2);
        assert_eq!(m.weight(0).shape(), (8, 16));
        assert_eq!(m.weight(1).shape(), (32, 2));
        assert_eq!(m.num_params(), 8 * 16 + 16 + 32 * 2 + 2);
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut m = Sage::new(&cfg(), 4, 2);
        let p: Vec<f32> = (0..m.num_params()).map(|i| i as f32 * 0.01).collect();
        m.set_params(&p);
        assert_eq!(m.params(), p);
    }

    #[test]
    fn sage_learns_the_toy_task() {
        let data = toy_dataset(20);
        let mut m = Sage::new(&cfg(), data.num_features(), 2);
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..60 {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        }
        let acc = accuracy(&m.predict(&data), &data.labels, &data.test_nodes);
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn neighbor_sampling_trains_and_stays_stochastic() {
        let data = toy_dataset(22);
        let mut c = cfg();
        c.sample_neighbors = 2;
        let mut m = Sage::new(&c, data.num_features(), 2);
        // Two sampled adjacencies from the same data differ (stochastic)…
        let (a1, _) = m.sample_mean_adj(&data);
        let (a2, _) = m.sample_mean_adj(&data);
        assert_ne!(a1, a2, "sampling produced identical draws");
        // …every row is stochastic and capped at sample+1 entries…
        for u in 0..a1.num_nodes() as u32 {
            assert!(a1.degree(u) <= 3);
            let s: f32 = a1.neighbor_weights(u).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // …and training still learns the toy task.
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..60 {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        }
        let acc = accuracy(&m.predict(&data), &data.labels, &data.test_nodes);
        assert!(acc > 0.85, "acc = {acc}");
    }

    #[test]
    fn sage_gradient_matches_finite_differences() {
        let data = toy_dataset(21);
        let mut m = Sage::new(&cfg(), data.num_features(), 2);
        let adj = data.adj_mean.clone();
        let adj_t = data.adj_mean_t.clone();
        let (logits, cache) = m.forward(&data, &adj, false);
        let (_, d_logits) = softmax_ce(&logits, &data.labels, &data.train_nodes);
        let grads = m.backward(&adj_t, &cache, &d_logits, None);
        let eps = 1e-2f32;
        let n = m.num_params();
        for idx in (0..n).step_by(n / 11 + 1) {
            let mut p = m.params();
            let orig = p[idx];
            p[idx] = orig + eps;
            m.set_params(&p);
            let (lp, _) = softmax_ce(&m.forward(&data, &adj, false).0, &data.labels, &data.train_nodes);
            p[idx] = orig - eps;
            m.set_params(&p);
            let (lm, _) = softmax_ce(&m.forward(&data, &adj, false).0, &data.labels, &data.train_nodes);
            p[idx] = orig;
            m.set_params(&p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 2e-2,
                "param {idx}: fd {fd} vs {}",
                grads[idx]
            );
        }
    }
}
