//! The decoupled backbone family: SGC, SIGN, S²GC, GBP.
//!
//! Feature propagation happens once per dataset ([`precompute`]); training
//! is then plain mini-batch MLP training on the combined features — which
//! is why these models scale (paper Table 1: the propagation term `O(kmf)`
//! is training-independent).

use super::common::{make_batches, GraphDataset, TrainHooks};
use super::precompute::{precompute, PrecomputeKind};
use super::GraphModel;
use crate::loss::{soft_ce, softmax_ce};
use crate::mlp::Mlp;
use crate::models::ModelConfig;
use crate::ops::softmax_rows;
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A decoupled GNN: `head(combine(hops(X)))`.
#[derive(Clone)]
pub struct DecoupledModel {
    kind: PrecomputeKind,
    k: usize,
    head: Mlp,
    batch_size: usize,
    rng: StdRng,
    /// Tiny cache of combined features keyed by dataset identity (a client
    /// alternates between at most its train view and an eval view).
    cache: Vec<(u64, Matrix)>,
    /// Scratch arena for batches/activations (empty after `clone()`).
    ws: Workspace,
}

impl DecoupledModel {
    /// Builds the model for `in_dim` raw features and `num_classes`.
    ///
    /// `cfg.layers == 1` gives the linear head the SGC paper uses; deeper
    /// heads insert `cfg.hidden`-wide ReLU layers.
    pub fn new(cfg: &ModelConfig, in_dim: usize, num_classes: usize) -> Self {
        let head_in = cfg.kind_in_dim(in_dim);
        let mut dims = vec![head_in];
        for _ in 0..cfg.layers.saturating_sub(1) {
            dims.push(cfg.hidden);
        }
        dims.push(num_classes);
        Self {
            kind: match cfg.kind {
                super::ModelKind::Sgc => PrecomputeKind::Sgc,
                super::ModelKind::Sign => PrecomputeKind::Sign,
                super::ModelKind::S2gc => PrecomputeKind::S2gc,
                super::ModelKind::Gbp => PrecomputeKind::Gbp { beta: cfg.beta },
                _ => PrecomputeKind::Sgc,
            },
            k: cfg.k,
            head: Mlp::new(&dims, cfg.dropout, cfg.seed),
            batch_size: cfg.batch_size,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            cache: Vec::new(),
            ws: Workspace::new(),
        }
    }

    /// Construction with an explicit precompute kind (used by the factory
    /// for GBP's beta).
    pub fn with_kind(cfg: &ModelConfig, kind: PrecomputeKind, in_dim: usize, num_classes: usize) -> Self {
        let mut m = Self::new(cfg, in_dim, num_classes);
        m.kind = kind;
        m
    }

    /// Checks out the cached combined features for `data`, computing them
    /// on a miss. The caller must return the entry with
    /// [`Self::return_combined`] — checking the entry *out* (instead of
    /// borrowing it) lets training call `&mut self` methods on the head
    /// without cloning the full feature matrix every epoch, which is what
    /// the seed implementation did.
    fn take_combined(&mut self, data: &GraphDataset) -> (u64, Matrix) {
        if let Some(pos) = self.cache.iter().position(|(k, _)| *k == data.cache_key) {
            return self.cache.swap_remove(pos);
        }
        let p = precompute(self.kind, &data.adj_norm, &data.features, self.k);
        if self.cache.len() >= 2 {
            self.cache.remove(0);
        }
        (data.cache_key, p)
    }

    /// Returns a checked-out cache entry (most-recently-used last).
    fn return_combined(&mut self, entry: (u64, Matrix)) {
        self.cache.push(entry);
    }
}

impl GraphModel for DecoupledModel {
    fn num_params(&self) -> usize {
        self.head.num_params()
    }

    fn params(&self) -> Vec<f32> {
        self.head.params().to_vec()
    }

    fn set_params(&mut self, p: &[f32]) {
        self.head.set_params(p);
    }

    fn train_epoch(
        &mut self,
        data: &GraphDataset,
        opt: &mut dyn Optimizer,
        hooks: &mut TrainHooks<'_>,
    ) -> f32 {
        // Check out (cached) combined features — no per-epoch clone.
        let entry = self.take_combined(data);
        let features = &entry.1;
        let mut ws = std::mem::take(&mut self.ws);

        let batches = make_batches(&data.train_nodes, self.batch_size, &mut self.rng);
        let mut total_loss = 0f64;
        let mut steps = 0usize;
        for batch in &batches {
            if batch.is_empty() {
                continue;
            }
            let mut xb = ws.take_matrix(batch.len(), features.cols());
            features.gather_rows_into(batch, &mut xb);
            let (logits, cache) = self.head.forward_ws(&xb, true, &mut ws);
            // Supervised CE over the whole batch (rows are local to batch).
            let labels_b: Vec<u32> = batch.iter().map(|&i| data.labels[i as usize]).collect();
            let rows_b: Vec<u32> = (0..batch.len() as u32).collect();
            let (loss, mut d_logits) = softmax_ce(&logits, &labels_b, &rows_b);
            // FedGL-style pseudo labels on the batch subset that has them.
            if let Some(pl) = hooks.pseudo.as_ref() {
                let rows_pl: Vec<u32> = batch
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| pl.mask[n as usize])
                    .map(|(b, _)| b as u32)
                    .collect();
                if !rows_pl.is_empty() {
                    let targets_b = pl.targets.gather_rows(batch);
                    let (_, d_extra) = soft_ce(&logits, &targets_b, &rows_pl, pl.weight);
                    d_logits.axpy(1.0, &d_extra);
                }
            }
            let hidden_grad = hooks
                .hidden_hook
                .as_mut()
                .map(|h| h(batch, cache.penultimate()));
            let (mut grads, d_x) =
                self.head
                    .backward_ws(&cache, &d_logits, hidden_grad.as_ref(), &mut ws);
            if let Some(gh) = hooks.grad_hook.as_mut() {
                gh(self.head.params(), &mut grads);
            }
            opt.step(self.head.params_mut(), &grads);
            // Everything scratch goes back to the arena for the next batch.
            ws.give(grads);
            ws.give_matrix(d_x);
            ws.give_matrix(d_logits);
            if let Some(hg) = hidden_grad {
                ws.give_matrix(hg);
            }
            cache.recycle(&mut ws);
            ws.give_matrix(logits);
            ws.give_matrix(xb);
            total_loss += loss as f64;
            steps += 1;
        }
        self.ws = ws;
        self.return_combined(entry);
        if steps == 0 {
            0.0
        } else {
            (total_loss / steps as f64) as f32
        }
    }

    fn predict(&mut self, data: &GraphDataset) -> Matrix {
        let entry = self.take_combined(data);
        let mut ws = std::mem::take(&mut self.ws);
        let logits = self.head.infer_ws(&entry.1, &mut ws);
        let out = softmax_rows(&logits);
        ws.give_matrix(logits);
        self.ws = ws;
        self.return_combined(entry);
        out
    }

    fn predict_into(&mut self, data: &GraphDataset, out: &mut Matrix) {
        // Same computation as `predict`, but the softmax runs in place on
        // the workspace-pooled logits and the result is copied into the
        // caller's buffer: zero heap allocations once the feature cache
        // and workspace are warm.
        let entry = self.take_combined(data);
        let mut ws = std::mem::take(&mut self.ws);
        let mut logits = self.head.infer_ws(&entry.1, &mut ws);
        crate::ops::softmax_rows_inplace(&mut logits);
        out.resize_to(logits.rows(), logits.cols());
        out.as_mut_slice().copy_from_slice(logits.as_slice());
        ws.give_matrix(logits);
        self.ws = ws;
        self.return_combined(entry);
    }

    fn penultimate(&mut self, data: &GraphDataset) -> Matrix {
        let entry = self.take_combined(data);
        let h = self.head.infer_hidden(&entry.1);
        self.return_combined(entry);
        h
    }

    fn clone_box(&self) -> Box<dyn GraphModel> {
        Box::new(self.clone())
    }
}

impl ModelConfig {
    /// Input dimension of the head after hop combination.
    pub(crate) fn kind_in_dim(&self, in_dim: usize) -> usize {
        match self.kind {
            super::ModelKind::Sign => in_dim * (self.k + 1),
            _ => in_dim,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::models::ModelKind;
    use crate::optim::Adam;
    use fedgta_graph::EdgeList;

    /// Two homophilous clusters with separable features.
    pub(crate) fn toy_dataset(seed: u64) -> GraphDataset {
        use rand::Rng;
        let n = 40;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                let same = (i < 20) == (j < 20);
                let p = if same { 0.3 } else { 0.02 };
                if rng.random::<f64>() < p {
                    el.push_undirected(i, j).unwrap();
                }
            }
        }
        let mut x = Matrix::zeros(n, 4);
        for i in 0..n {
            let c = usize::from(i >= 20);
            for j in 0..4 {
                let mu = if j % 2 == c { 1.0 } else { -1.0 };
                x.set(i, j, mu + 0.5 * (rng.random::<f32>() - 0.5));
            }
        }
        let labels: Vec<u32> = (0..n).map(|i| u32::from(i >= 20)).collect();
        let train: Vec<u32> = (0..n as u32).filter(|i| i % 2 == 0).collect();
        let test: Vec<u32> = (0..n as u32).filter(|i| i % 2 == 1).collect();
        GraphDataset::new(&el.to_csr(), x, labels, 2, train, Vec::new(), test)
    }

    fn cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            hidden: 16,
            layers: 2,
            k: 2,
            batch_size: 16,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn all_decoupled_variants_learn_the_toy_task() {
        for kind in [ModelKind::Sgc, ModelKind::Sign, ModelKind::S2gc, ModelKind::Gbp] {
            let data = toy_dataset(1);
            let c = cfg(kind);
            let mut m = DecoupledModel::new(&c, data.num_features(), 2);
            let mut opt = Adam::new(0.05, 0.0);
            for _ in 0..30 {
                m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
            }
            let probs = m.predict(&data);
            let acc = accuracy(&probs, &data.labels, &data.test_nodes);
            assert!(acc > 0.9, "{:?} acc = {acc}", kind);
        }
    }

    #[test]
    fn params_roundtrip_changes_predictions() {
        let data = toy_dataset(2);
        let c = cfg(ModelKind::Sign);
        let mut m = DecoupledModel::new(&c, data.num_features(), 2);
        let p0 = m.params();
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..5 {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        }
        let trained = m.predict(&data);
        m.set_params(&p0);
        let restored = m.predict(&data);
        assert_ne!(trained, restored);
        assert_eq!(m.params(), p0);
    }

    #[test]
    fn grad_hook_sees_every_step() {
        let data = toy_dataset(3);
        let c = cfg(ModelKind::Sgc);
        let mut m = DecoupledModel::new(&c, data.num_features(), 2);
        let mut opt = Adam::new(0.01, 0.0);
        let mut calls = 0usize;
        let mut hook = |_p: &[f32], _g: &mut [f32]| calls += 1;
        let mut hooks = TrainHooks {
            grad_hook: Some(&mut hook),
            ..TrainHooks::none()
        };
        m.train_epoch(&data, &mut opt, &mut hooks);
        // 20 train nodes / batch 16 => 2 batches.
        assert_eq!(calls, 2);
    }

    #[test]
    fn cache_reused_across_epochs() {
        let data = toy_dataset(4);
        let c = cfg(ModelKind::S2gc);
        let mut m = DecoupledModel::new(&c, data.num_features(), 2);
        let mut opt = Adam::new(0.01, 0.0);
        m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        assert_eq!(m.cache.len(), 1);
        m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        assert_eq!(m.cache.len(), 1);
        // Evaluating on a second dataset adds a second entry, not more.
        let other = toy_dataset(5);
        m.predict(&other);
        m.predict(&data);
        assert_eq!(m.cache.len(), 2);
    }
}
