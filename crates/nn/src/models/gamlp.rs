//! GAMLP (Zhang et al. 2022), reproduced as a decoupled hop-attention
//! model: precomputed hop features `X⁽⁰⁾…X⁽ᵏ⁾` are combined by a learned
//! softmax gate `s = softmax(a)` into `X_c = Σ sₗ X⁽ˡ⁾`, followed by an
//! MLP head.
//!
//! The original paper offers several attention variants (JK / recursive);
//! the learned-gate form keeps the same architecture class — a trainable
//! weighting of precomputed propagated features feeding an MLP — with
//! exact gradients for both the gate and the head (substitution recorded
//! in DESIGN.md).

use super::common::{make_batches, GraphDataset, TrainHooks};
use super::precompute::hop_features;
use super::GraphModel;
use crate::loss::{soft_ce, softmax_ce};
use crate::mlp::Mlp;
use crate::models::ModelConfig;
use crate::ops::softmax_rows;
use crate::optim::Optimizer;
use crate::tensor::Matrix;
use crate::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GAMLP: learned softmax gate over hop features + MLP head.
#[derive(Clone)]
pub struct Gamlp {
    /// Gate logits `a ∈ R^{k+1}`.
    gate: Vec<f32>,
    head: Mlp,
    k: usize,
    batch_size: usize,
    rng: StdRng,
    /// Hop-feature cache keyed by dataset identity.
    cache: Vec<(u64, Vec<Matrix>)>,
    /// Scratch arena for gathered/combined batches (empty after `clone()`).
    ws: Workspace,
}

impl Gamlp {
    /// Builds GAMLP for `in_dim` features and `num_classes`.
    pub fn new(cfg: &ModelConfig, in_dim: usize, num_classes: usize) -> Self {
        let mut dims = vec![in_dim];
        for _ in 0..cfg.layers.saturating_sub(1) {
            dims.push(cfg.hidden);
        }
        dims.push(num_classes);
        Self {
            gate: vec![0.0; cfg.k + 1],
            head: Mlp::new(&dims, cfg.dropout, cfg.seed),
            k: cfg.k,
            batch_size: cfg.batch_size,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xc2b2_ae3d_27d4_eb4f),
            cache: Vec::new(),
            ws: Workspace::new(),
        }
    }

    fn softmax_gate(&self) -> Vec<f32> {
        let max = self.gate.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = self.gate.iter().map(|&a| (a - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    fn hops<'a>(&'a mut self, data: &GraphDataset) -> &'a [Matrix] {
        if let Some(pos) = self.cache.iter().position(|(key, _)| *key == data.cache_key) {
            return &self.cache[pos].1;
        }
        let hops = hop_features(&data.adj_norm, &data.features, self.k);
        if self.cache.len() >= 2 {
            self.cache.remove(0);
        }
        self.cache.push((data.cache_key, hops));
        &self.cache.last().unwrap().1
    }

    /// Combine hop rows of `batch` with the current gate (allocating
    /// wrapper of [`Self::combine_rows_ws`]; test/reference path).
    #[cfg(test)]
    fn combine_rows(hops: &[Matrix], gate: &[f32], batch: &[u32]) -> (Matrix, Vec<Matrix>) {
        let mut ws = Workspace::new();
        Self::combine_rows_ws(hops, gate, batch, &mut ws)
    }

    /// Allocation-free [`Self::combine_rows`]: gathered rows and the
    /// combined batch come from (and return to) the workspace.
    fn combine_rows_ws(
        hops: &[Matrix],
        gate: &[f32],
        batch: &[u32],
        ws: &mut Workspace,
    ) -> (Matrix, Vec<Matrix>) {
        let gathered: Vec<Matrix> = hops
            .iter()
            .map(|h| {
                let mut g = ws.take_matrix(batch.len(), h.cols());
                h.gather_rows_into(batch, &mut g);
                g
            })
            .collect();
        let mut out = ws.take_matrix(batch.len(), hops[0].cols());
        out.copy_from(&gathered[0]);
        out.scale(gate[0]);
        for (l, g) in gathered.iter().enumerate().skip(1) {
            out.axpy(gate[l], g);
        }
        (out, gathered)
    }

    /// Gate-combine over *all* nodes: the identity gather is skipped, so
    /// inference never copies every hop matrix.
    fn combine_all(hops: &[Matrix], gate: &[f32]) -> Matrix {
        let mut out = hops[0].clone();
        out.scale(gate[0]);
        for (l, h) in hops.iter().enumerate().skip(1) {
            out.axpy(gate[l], h);
        }
        out
    }

    /// Gate gradient via the softmax Jacobian.
    fn gate_grad(&self, gate: &[f32], d_comb: &Matrix, gathered: &[Matrix]) -> Vec<f32> {
        // dL/ds_l = <d_comb, H_l>.
        let ds: Vec<f32> = gathered
            .iter()
            .map(|h| {
                d_comb
                    .as_slice()
                    .iter()
                    .zip(h.as_slice())
                    .map(|(&a, &b)| a * b)
                    .sum::<f32>()
            })
            .collect();
        let dot: f32 = gate.iter().zip(&ds).map(|(&s, &d)| s * d).sum();
        gate.iter().zip(&ds).map(|(&s, &d)| s * (d - dot)).collect()
    }
}

impl GraphModel for Gamlp {
    fn num_params(&self) -> usize {
        self.gate.len() + self.head.num_params()
    }

    fn params(&self) -> Vec<f32> {
        let mut out = self.gate.clone();
        out.extend_from_slice(self.head.params());
        out
    }

    fn set_params(&mut self, p: &[f32]) {
        assert_eq!(p.len(), self.num_params(), "param length mismatch");
        let g = self.gate.len();
        self.gate.copy_from_slice(&p[..g]);
        self.head.set_params(&p[g..]);
    }

    fn train_epoch(
        &mut self,
        data: &GraphDataset,
        opt: &mut dyn Optimizer,
        hooks: &mut TrainHooks<'_>,
    ) -> f32 {
        self.hops(data);
        let pos = self
            .cache
            .iter()
            .position(|(key, _)| *key == data.cache_key)
            .expect("just cached");
        // Check the hop set out of the cache (no per-epoch clone of k+1
        // full matrices); pushed back after the epoch.
        let entry = self.cache.swap_remove(pos);
        let hops = &entry.1;
        let mut ws = std::mem::take(&mut self.ws);

        let batches = make_batches(&data.train_nodes, self.batch_size, &mut self.rng);
        let mut total_loss = 0f64;
        let mut steps = 0usize;
        for batch in &batches {
            if batch.is_empty() {
                continue;
            }
            let gate = self.softmax_gate();
            let (xb, gathered) = Self::combine_rows_ws(hops, &gate, batch, &mut ws);
            let (logits, cache) = self.head.forward_ws(&xb, true, &mut ws);
            let labels_b: Vec<u32> = batch.iter().map(|&i| data.labels[i as usize]).collect();
            let rows_b: Vec<u32> = (0..batch.len() as u32).collect();
            let (loss, mut d_logits) = softmax_ce(&logits, &labels_b, &rows_b);
            if let Some(pl) = hooks.pseudo.as_ref() {
                let rows_pl: Vec<u32> = batch
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| pl.mask[n as usize])
                    .map(|(b, _)| b as u32)
                    .collect();
                if !rows_pl.is_empty() {
                    let targets_b = pl.targets.gather_rows(batch);
                    let (_, d_extra) = soft_ce(&logits, &targets_b, &rows_pl, pl.weight);
                    d_logits.axpy(1.0, &d_extra);
                }
            }
            let hidden_grad = hooks
                .hidden_hook
                .as_mut()
                .map(|h| h(batch, cache.penultimate()));
            let (head_grads, d_comb) =
                self.head
                    .backward_ws(&cache, &d_logits, hidden_grad.as_ref(), &mut ws);
            let gate_grads = self.gate_grad(&gate, &d_comb, &gathered);
            let mut grads = gate_grads;
            grads.extend_from_slice(&head_grads);
            if let Some(gh) = hooks.grad_hook.as_mut() {
                let p = self.params();
                gh(&p, &mut grads);
            }
            let mut flat = self.params();
            opt.step(&mut flat, &grads);
            self.set_params(&flat);
            // Scratch back to the arena for the next batch.
            ws.give(head_grads);
            ws.give_matrix(d_comb);
            ws.give_matrix(d_logits);
            if let Some(hg) = hidden_grad {
                ws.give_matrix(hg);
            }
            cache.recycle(&mut ws);
            ws.give_matrix(logits);
            ws.give_matrix(xb);
            for g in gathered {
                ws.give_matrix(g);
            }
            total_loss += loss as f64;
            steps += 1;
        }
        self.ws = ws;
        self.cache.push(entry);
        if steps == 0 {
            0.0
        } else {
            (total_loss / steps as f64) as f32
        }
    }

    fn predict(&mut self, data: &GraphDataset) -> Matrix {
        self.hops(data);
        let pos = self
            .cache
            .iter()
            .position(|(key, _)| *key == data.cache_key)
            .expect("just cached");
        let gate = self.softmax_gate();
        let x = Self::combine_all(&self.cache[pos].1, &gate);
        softmax_rows(&self.head.infer(&x))
    }

    fn penultimate(&mut self, data: &GraphDataset) -> Matrix {
        self.hops(data);
        let pos = self
            .cache
            .iter()
            .position(|(key, _)| *key == data.cache_key)
            .expect("just cached");
        let gate = self.softmax_gate();
        let x = Self::combine_all(&self.cache[pos].1, &gate);
        self.head.infer_hidden(&x)
    }

    fn clone_box(&self) -> Box<dyn GraphModel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::models::decoupled::tests::toy_dataset;
    use crate::models::ModelKind;
    use crate::optim::Adam;

    fn cfg() -> ModelConfig {
        ModelConfig {
            kind: ModelKind::Gamlp,
            hidden: 16,
            layers: 2,
            k: 3,
            batch_size: 0,
            ..ModelConfig::default()
        }
    }

    #[test]
    fn param_layout_includes_gate() {
        let m = Gamlp::new(&cfg(), 4, 2);
        assert_eq!(m.num_params(), 4 + (4 * 16 + 16 + 16 * 2 + 2));
        let p = m.params();
        assert_eq!(&p[..4], &[0.0; 4]);
    }

    #[test]
    fn gate_starts_uniform() {
        let m = Gamlp::new(&cfg(), 4, 2);
        let s = m.softmax_gate();
        for &v in &s {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn gamlp_learns_the_toy_task() {
        let data = toy_dataset(30);
        let mut m = Gamlp::new(&cfg(), data.num_features(), 2);
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..40 {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        }
        let acc = accuracy(&m.predict(&data), &data.labels, &data.test_nodes);
        assert!(acc > 0.9, "acc = {acc}");
    }

    #[test]
    fn gate_moves_during_training() {
        let data = toy_dataset(31);
        let mut m = Gamlp::new(&cfg(), data.num_features(), 2);
        let mut opt = Adam::new(0.05, 0.0);
        for _ in 0..10 {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
        }
        assert!(m.gate.iter().any(|&a| a.abs() > 1e-4), "gate never updated");
    }

    #[test]
    fn full_gradient_matches_finite_differences() {
        let data = toy_dataset(32);
        let mut m = Gamlp::new(&cfg(), data.num_features(), 2);
        // Perturb the gate away from the symmetric point.
        let mut p = m.params();
        for (i, v) in p.iter_mut().take(4).enumerate() {
            *v = 0.1 * (i as f32 - 1.5);
        }
        m.set_params(&p);

        let loss_of = |m: &mut Gamlp| {
            let probs_free_logits = {
                let hops = m.hops(&data).to_vec();
                let gate = m.softmax_gate();
                let all: Vec<u32> = (0..data.num_nodes() as u32).collect();
                let (x, _) = Gamlp::combine_rows(&hops, &gate, &all);
                m.head.infer(&x)
            };
            let rows = data.train_nodes.clone();
            softmax_ce(&probs_free_logits, &data.labels, &rows).0
        };

        // Analytic gradients via one full-batch "epoch" with lr 0 — instead
        // compute directly.
        let hops = m.hops(&data).to_vec();
        let gate = m.softmax_gate();
        let all: Vec<u32> = (0..data.num_nodes() as u32).collect();
        let (xb, gathered) = Gamlp::combine_rows(&hops, &gate, &all);
        let (logits, cache) = m.head.forward(&xb, false);
        let (_, d_logits) = softmax_ce(&logits, &data.labels, &data.train_nodes);
        let (head_grads, d_comb) = m.head.backward(&cache, &d_logits, None);
        let gate_grads = m.gate_grad(&gate, &d_comb, &gathered);
        let mut grads = gate_grads;
        grads.extend(head_grads);

        let eps = 1e-2f32;
        let n = m.num_params();
        for idx in (0..n).step_by(n / 15 + 1).chain(0..4) {
            let mut p = m.params();
            let orig = p[idx];
            p[idx] = orig + eps;
            m.set_params(&p);
            let lp = loss_of(&mut m);
            p[idx] = orig - eps;
            m.set_params(&p);
            let lm = loss_of(&mut m);
            p[idx] = orig;
            m.set_params(&p);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grads[idx]).abs() < 2e-2,
                "param {idx}: fd {fd} vs {}",
                grads[idx]
            );
        }
    }
}
