//! Optimizers over flat parameter buffers.
//!
//! Models in this crate keep every parameter in one contiguous `Vec<f32>`,
//! so optimizers are simple elementwise loops — and federated strategies
//! can treat a model as an opaque flat vector.

/// A first-order optimizer stepping a flat parameter buffer.
pub trait Optimizer: Send {
    /// Applies one update: `params -= f(grads)`.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);
    /// Clears internal state (momentum/moment estimates). Called when the
    /// server replaces a client's parameters wholesale.
    fn reset(&mut self);
    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
}

/// SGD with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * (g + self.weight_decay * *p);
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            let g = g + self.weight_decay * *p;
            *v = self.momentum * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba 2015) with decoupled-ish L2 (added to the gradient,
/// as in the original paper).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate η.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + self.weight_decay * params[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = x² with gradient 2x should converge toward 0.
    fn run<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let mut p = vec![5.0f32];
        for _ in 0..steps {
            let g = vec![2.0 * p[0]];
            opt.step(&mut p, &g);
        }
        p[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut o = Sgd::new(0.1, 0.0, 0.0);
        assert!(run(&mut o, 100).abs() < 1e-4);
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut o = Sgd::new(0.05, 0.9, 0.0);
        assert!(run(&mut o, 200).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut o = Adam::new(0.2, 0.0);
        assert!(run(&mut o, 300).abs() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut o = Sgd::new(0.1, 0.0, 0.5);
        let mut p = vec![1.0f32];
        o.step(&mut p, &[0.0]);
        assert!((p[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_momentum() {
        let mut o = Sgd::new(0.1, 0.9, 0.0);
        let mut p = vec![1.0f32];
        o.step(&mut p, &[1.0]);
        o.reset();
        let before = p[0];
        o.step(&mut p, &[0.0]);
        // No velocity carry-over: zero grad means no movement.
        assert_eq!(p[0], before);
    }

    #[test]
    fn adam_state_resizes_with_param_length() {
        let mut o = Adam::new(0.1, 0.0);
        let mut p = vec![1.0f32; 2];
        o.step(&mut p, &[0.1, 0.1]);
        let mut q = vec![1.0f32; 3];
        o.step(&mut q, &[0.1, 0.1, 0.1]); // must not panic
    }
}
