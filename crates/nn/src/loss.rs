//! Softmax cross-entropy losses with exact gradients.
//!
//! Both hard-label CE (supervised training on the labeled set) and
//! soft-target CE (FedGL's pseudo-label supervision) are computed over an
//! explicit row subset, returning the mean loss and the full-shape logits
//! gradient (zero outside the subset) — ready to feed straight into
//! [`crate::mlp::Mlp::backward`].

use crate::ops::softmax_rows;
use crate::tensor::Matrix;

/// Hard-label softmax cross-entropy over `rows`.
///
/// Returns `(mean_loss, d_logits)` where `d_logits[i,·] =
/// (softmax(logits[i,·]) − onehot(labels[i])) / |rows|` for selected rows
/// and zero elsewhere.
pub fn softmax_ce(logits: &Matrix, labels: &[u32], rows: &[u32]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "labels length mismatch");
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    if rows.is_empty() {
        return (0.0, grad);
    }
    let probs = softmax_rows(logits);
    let inv = 1.0 / rows.len() as f32;
    let mut loss = 0f64;
    for &i in rows {
        let i = i as usize;
        let y = labels[i] as usize;
        debug_assert!(y < logits.cols(), "label out of range");
        let p = probs.get(i, y).max(1e-12);
        loss += -(p as f64).ln();
        let g = grad.row_mut(i);
        for (gj, &pj) in g.iter_mut().zip(probs.row(i)) {
            *gj = pj * inv;
        }
        g[y] -= inv;
    }
    ((loss / rows.len() as f64) as f32, grad)
}

/// Soft-target cross-entropy over `rows`, scaled by `weight`.
///
/// `targets` rows must be probability vectors. Returns `(weighted mean
/// loss, d_logits)` with `d_logits[i,·] = weight · (softmax − target) /
/// |rows|` on selected rows.
pub fn soft_ce(logits: &Matrix, targets: &Matrix, rows: &[u32], weight: f32) -> (f32, Matrix) {
    assert_eq!(logits.shape(), targets.shape(), "target shape mismatch");
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    if rows.is_empty() || weight == 0.0 {
        return (0.0, grad);
    }
    let probs = softmax_rows(logits);
    let inv = weight / rows.len() as f32;
    let mut loss = 0f64;
    for &i in rows {
        let i = i as usize;
        let mut row_loss = 0f64;
        let g = grad.row_mut(i);
        for ((gj, &pj), &tj) in g.iter_mut().zip(probs.row(i)).zip(targets.row(i)) {
            *gj = inv * (pj - tj);
            if tj > 0.0 {
                row_loss += -(tj as f64) * (pj.max(1e-12) as f64).ln();
            }
        }
        loss += row_loss;
    }
    (
        (weight as f64 * loss / rows.len() as f64) as f32,
        grad,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss_small_grad() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (loss, grad) = softmax_ce(&logits, &[0, 1], &[0, 1]);
        assert!(loss < 1e-6);
        assert!(grad.norm() < 1e-6);
    }

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = softmax_ce(&logits, &[2], &[0]);
        assert!((loss - (4f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_zero_outside_mask() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 0.5]]);
        let (_, grad) = softmax_ce(&logits, &[0, 1], &[1]);
        assert_eq!(grad.row(0), &[0.0, 0.0]);
        assert!(grad.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn ce_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[0.1, 0.4, -0.2]]);
        let labels = [2u32, 0];
        let rows = [0u32, 1];
        let (_, grad) = softmax_ce(&logits, &labels, &rows);
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..3 {
                let mut lp = logits.clone();
                lp.set(i, j, lp.get(i, j) + eps);
                let (up, _) = softmax_ce(&lp, &labels, &rows);
                let mut lm = logits.clone();
                lm.set(i, j, lm.get(i, j) - eps);
                let (dn, _) = softmax_ce(&lm, &labels, &rows);
                let fd = (up - dn) / (2.0 * eps);
                assert!(
                    (fd - grad.get(i, j)).abs() < 1e-3,
                    "fd {fd} vs grad {}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn soft_ce_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.5, -0.5], &[1.0, 0.0]]);
        let targets = Matrix::from_rows(&[&[0.7, 0.3], &[0.2, 0.8]]);
        let rows = [0u32, 1];
        let w = 0.5;
        let (_, grad) = soft_ce(&logits, &targets, &rows, w);
        let eps = 1e-3f32;
        for i in 0..2 {
            for j in 0..2 {
                let mut lp = logits.clone();
                lp.set(i, j, lp.get(i, j) + eps);
                let (up, _) = soft_ce(&lp, &targets, &rows, w);
                let mut lm = logits.clone();
                lm.set(i, j, lm.get(i, j) - eps);
                let (dn, _) = soft_ce(&lm, &targets, &rows, w);
                let fd = (up - dn) / (2.0 * eps);
                assert!(
                    (fd - grad.get(i, j)).abs() < 1e-3,
                    "fd {fd} vs grad {}",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    fn empty_rows_return_zero() {
        let logits = Matrix::zeros(2, 3);
        let (loss, grad) = softmax_ce(&logits, &[0, 1], &[]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
        let t = Matrix::zeros(2, 3);
        let (loss, _) = soft_ce(&logits, &t, &[], 1.0);
        assert_eq!(loss, 0.0);
    }
}
