//! Dense matmul kernels, cache-friendly and parallel over row chunks.
//!
//! All three transpose variants needed by MLP backprop are provided:
//! `C = A·B` (forward), `C = Aᵀ·B` (weight gradients), `C = A·Bᵀ`
//! (input gradients). The inner loops use the i-k-j ordering so the `B`
//! operand streams row-wise through cache; parallelism reuses the
//! deterministic chunking of [`fedgta_graph::par`].

use crate::tensor::Matrix;
use fedgta_graph::par::par_chunks_mut;

/// `C = A · B` with `A: m×k`, `B: k×n`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(c.as_mut_slice(), m, n, |_, chunk, range| {
        for (local, row) in range.enumerate() {
            let out = &mut chunk[local * n..(local + 1) * n];
            let arow = &ad[row * k..(row + 1) * k];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in out.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
    c
}

/// `C = Aᵀ · B` with `A: m×k`, `B: m×n` → `C: k×n`.
///
/// This is the weight-gradient kernel (`dW = Xᵀ · dY`). The transpose is
/// fused: each output row `kk` accumulates `Σ_i A[i,kk] · B[i,·]`, so we
/// parallelize over output rows by having each worker scan `A` column-wise
/// for its assigned rows.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_tn outer dim mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(k, n);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(c.as_mut_slice(), k, n, |_, chunk, range| {
        for i in 0..m {
            let arow = &ad[i * k..(i + 1) * k];
            let brow = &bd[i * n..(i + 1) * n];
            for (local, kk) in range.clone().enumerate() {
                let av = arow[kk];
                if av == 0.0 {
                    continue;
                }
                let out = &mut chunk[local * n..(local + 1) * n];
                for (o, &bv) in out.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
    c
}

/// `C = A · Bᵀ` with `A: m×k`, `B: n×k` → `C: m×n`.
///
/// This is the input-gradient kernel (`dX = dY · Wᵀ`). Each output element
/// is a dot product of two contiguous rows, so it is naturally
/// cache-friendly without materializing the transpose.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dim mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(c.as_mut_slice(), m, n, |_, chunk, range| {
        for (local, row) in range.enumerate() {
            let arow = &ad[row * k..(row + 1) * k];
            let out = &mut chunk[local * n..(local + 1) * n];
            for (j, o) in out.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0f32;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
    });
    c
}

/// Adds a row-broadcast bias: `X[i,·] += bias`.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(x.cols(), bias.len(), "bias length mismatch");
    for i in 0..x.rows() {
        for (v, &b) in x.row_mut(i).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Column sums (the bias gradient: `db = Σ_i dY[i,·]`).
pub fn col_sums(x: &Matrix) -> Vec<f32> {
    let mut out = vec![0f32; x.cols()];
    for i in 0..x.rows() {
        for (o, &v) in out.iter_mut().zip(x.row(i)) {
            *o += v;
        }
    }
    out
}

/// In-place ReLU; returns nothing, the mask is recoverable from the output
/// (`y > 0`).
pub fn relu_inplace(x: &mut Matrix) {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward through ReLU: zeroes `grad` wherever the forward output was 0.
pub fn relu_backward_inplace(grad: &mut Matrix, forward_out: &Matrix) {
    assert_eq!(grad.shape(), forward_out.shape());
    for (g, &y) in grad.as_mut_slice().iter_mut().zip(forward_out.as_slice()) {
        if y <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Row-wise softmax into a new matrix (numerically stable).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// Row-wise softmax in place.
pub fn softmax_rows_inplace(x: &mut Matrix) {
    let cols = x.cols();
    if cols == 0 {
        return;
    }
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Sparse-dense product wrapper: `Y = A · X` for a CSR adjacency.
pub fn spmm_csr(a: &fedgta_graph::Csr, x: &Matrix) -> Matrix {
    let y = fedgta_graph::spmm::spmm(a, x.as_slice(), x.cols())
        .expect("CSR and dense operand row counts must agree");
    Matrix::from_vec(x.rows(), x.cols(), y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        // Random-ish deterministic matrices.
        let a = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32 * 0.7).sin()).collect());
        let b = Matrix::from_vec(4, 5, (0..20).map(|i| (i as f32 * 0.3).cos()).collect());
        // Aᵀ·B via explicit transpose.
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                at.set(j, i, a.get(i, j));
            }
        }
        assert_close(&matmul_tn(&a, &b), &matmul(&at, &b));

        let c = Matrix::from_vec(5, 3, (0..15).map(|i| (i as f32 * 0.9).sin()).collect());
        let mut ct = Matrix::zeros(3, 5);
        for i in 0..5 {
            for j in 0..3 {
                ct.set(j, i, c.get(i, j));
            }
        }
        // A·Cᵀ  (A: 4×3, C: 5×3)
        assert_close(&matmul_nt(&a, &c), &matmul(&a, &ct));
    }

    #[test]
    fn bias_and_col_sums_are_adjoint() {
        let mut x = Matrix::zeros(3, 2);
        add_bias(&mut x, &[1.0, -2.0]);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        assert_eq!(col_sums(&x), vec![3.0, -6.0]);
    }

    #[test]
    fn relu_forward_backward() {
        let mut x = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        relu_inplace(&mut x);
        assert_eq!(x.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
        let mut g = Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        relu_backward_inplace(&mut g, &x);
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1001.0, 999.0]]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!(s.get(1, 1) > s.get(1, 0)); // stable at large magnitudes
    }

    #[test]
    fn spmm_csr_matches_dense() {
        use fedgta_graph::EdgeList;
        let mut el = EdgeList::new(3);
        el.push_undirected(0, 1).unwrap();
        el.push_undirected(1, 2).unwrap();
        let g = el.to_csr();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]);
        let y = spmm_csr(&g, &x);
        assert_eq!(y.as_slice(), &[2.0, 5.0, 2.0]);
    }
}
