//! Dense compute kernels: register-blocked, allocation-free, and parallel
//! over row chunks.
//!
//! All three transpose variants needed by MLP backprop are provided:
//! `C = A·B` (forward), `C = Aᵀ·B` (weight gradients), `C = A·Bᵀ`
//! (input gradients) — each in an allocating form (`matmul*`) and an
//! allocation-free `_into` form writing into a caller-provided buffer
//! (typically checked out of a [`crate::workspace::Workspace`]).
//!
//! ## Kernel design
//!
//! The inner loops are register-blocked so LLVM auto-vectorizes them:
//!
//! - [`matmul_into`] (and the fused bias variants) run an **8-row ×
//!   16-column register-tiled outer-product micro-kernel**
//!   ([`gemm_rows_tile`]): the `C` tile lives in registers across the
//!   entire `k` loop, each loaded `B` block serves eight output rows (8×
//!   less `B` traffic than a row-at-a-time axpy), and every output element
//!   is read and written exactly once. Row tails fall back to
//!   [`gemm_row`], which processes
//!   **4 k-steps per iteration**, broadcasting four `A` scalars against
//!   four contiguous `B` rows through `chunks_exact` column blocks
//!   ([`axpy4`]) — the same element-wise accumulation order, so the two
//!   paths agree bit-for-bit.
//! - [`matmul_tn_into`] reuses the same `8×16` output tiling with the
//!   transpose folded into the tile indexing (8 consecutive `kk` rows are
//!   a contiguous 8-wide block of each `A` row), accumulating in strict
//!   increasing-`i` order.
//! - [`matmul_nt_into`] computes each output element as a dot product over
//!   **8 independent accumulator lanes** ([`dot_lanes`]), breaking the
//!   add-latency chain that serializes a naive dot product.
//! - [`matmul_bias_relu_into`] fuses the hidden-layer epilogue: the output
//!   row is *initialized with the bias*, accumulated, and rectified in one
//!   pass — no separate `add_bias`/`relu_inplace` sweeps over the matrix.
//!
//! The seed kernels skipped `A` zeros with a branch in the innermost loop
//! (`if av == 0.0 { continue }`); that branch defeated vectorization and
//! cost more than it saved even on post-ReLU activations (~50% zeros), so
//! the blocked kernels are branch-free. Sparse operands go through the
//! *sparse* kernel ([`spmm_csr`]) instead — that is the profiled fast path
//! for genuinely sparse operators.
//!
//! ## Determinism
//!
//! Parallelism reuses the deterministic row chunking of
//! [`fedgta_graph::par`]: every output element is produced by exactly one
//! worker with a fixed accumulation order, so results are bit-identical
//! for any thread count. The *fixed order itself* differs from the
//! pre-blocking kernels (lane-split dot products, no zero-skip), which may
//! shift floats against old baselines — but never across thread counts.
//!
//! A straightforward scalar reference implementation is retained in
//! [`naive`] for property tests and as the "before" baseline of the kernel
//! microbenchmarks.

use crate::tensor::{MatView, Matrix};
use fedgta_graph::par::par_chunks_mut;

/// Records `2·m·k·n` into the `kernel.matmul.flops` counter (all dense
/// kernel shapes reduce to one multiply-add per `(i,kk,j)` triple). The
/// handle is cached in a `OnceLock`, so the armed path is one lock-free
/// load plus one relaxed `fetch_add`; the disarmed path is a single
/// relaxed level load. Never allocates after the first armed call.
#[inline]
fn record_matmul_flops(m: usize, k: usize, n: usize) {
    use std::sync::{Arc, OnceLock};
    if !fedgta_obs::metrics_on() {
        return;
    }
    static FLOPS: OnceLock<Arc<fedgta_obs::Counter>> = OnceLock::new();
    FLOPS
        .get_or_init(|| fedgta_obs::global().counter("kernel.matmul.flops"))
        .add(2 * (m as u64) * (k as u64) * (n as u64));
}

/// Column-block width shared by the register-blocked kernels. Wide enough
/// for a full 512-bit vector per block; the per-element accumulation
/// expression is width-independent, so this constant can be retuned
/// without changing results bit-for-bit.
const COL_BLOCK: usize = 16;
/// Number of k/i-steps fused per blocked iteration.
const K_BLOCK: usize = 4;
/// Accumulator lanes for the dot-product kernel.
const LANES: usize = 8;

/// `out[j] += a0·b0[j] + a1·b1[j] + a2·b2[j] + a3·b3[j]` over the full row,
/// in `COL_BLOCK`-wide chunks (`chunks_exact` elides bounds checks so LLVM
/// vectorizes both the blocks and the remainder).
#[inline(always)]
fn axpy4(out: &mut [f32], a: [f32; K_BLOCK], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    let mut oc = out.chunks_exact_mut(COL_BLOCK);
    let bc = b0
        .chunks_exact(COL_BLOCK)
        .zip(b1.chunks_exact(COL_BLOCK))
        .zip(b2.chunks_exact(COL_BLOCK).zip(b3.chunks_exact(COL_BLOCK)));
    for (o, ((x0, x1), (x2, x3))) in (&mut oc).zip(bc) {
        for l in 0..COL_BLOCK {
            o[l] = o[l] + a[0] * x0[l] + a[1] * x1[l] + a[2] * x2[l] + a[3] * x3[l];
        }
    }
    let rem = oc.into_remainder();
    let j0 = b0.len() - rem.len();
    for (j, o) in rem.iter_mut().enumerate() {
        let j = j0 + j;
        *o = *o + a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
    }
}

/// Single-step tail of [`axpy4`]: `out[j] += a · b[j]`.
#[inline(always)]
fn axpy1(out: &mut [f32], a: f32, b: &[f32]) {
    for (o, &bv) in out.iter_mut().zip(b) {
        *o += a * bv;
    }
}

/// Rows per register tile of the multi-row GEMM micro-kernel.
const ROW_BLOCK: usize = 8;
/// Columns per register tile of the multi-row GEMM micro-kernel: 8 rows ×
/// 16 columns of `C` stay resident in registers across the entire `k`
/// loop (one 512-bit vector per row on AVX-512, two 256-bit on AVX2).
/// Like [`COL_BLOCK`], the tile shape is retunable without changing
/// results: per-element accumulation order is width-independent.
const TILE_COLS: usize = 16;

/// A [`ROW_BLOCK`]-row band of `C = A·B` at once: an outer-product
/// micro-kernel holding an `8×16` register tile of `C` across the whole
/// `k` loop, so every loaded `B` block serves eight output rows (8× less
/// `B` traffic than a row-at-a-time axpy) and each output element is read
/// and written exactly once.
///
/// `out` is the band of contiguous output rows (length `ROW_BLOCK·n`),
/// pre-initialized (zeros, or the bias for the fused epilogue).
/// Accumulation per element is strict increasing-`k` order — the same
/// left-to-right chain of binary adds as [`gemm_row`], so the two paths
/// agree bit-for-bit and the `rows % ROW_BLOCK` tail can fall back to the
/// single-row kernel.
#[inline]
fn gemm_rows_tile(out: &mut [f32], arows: &[&[f32]; ROW_BLOCK], bd: &[f32], n: usize) {
    debug_assert_eq!(out.len(), ROW_BLOCK * n);
    let k = arows[0].len();
    let nb = n / TILE_COLS * TILE_COLS;
    let mut j = 0;
    while j < nb {
        let mut acc = [[0f32; TILE_COLS]; ROW_BLOCK];
        for (r, a) in acc.iter_mut().enumerate() {
            a.copy_from_slice(&out[r * n + j..r * n + j + TILE_COLS]);
        }
        for kk in 0..k {
            let b = &bd[kk * n + j..kk * n + j + TILE_COLS];
            for (r, a) in acc.iter_mut().enumerate() {
                let av = arows[r][kk];
                for l in 0..TILE_COLS {
                    a[l] += av * b[l];
                }
            }
        }
        for (r, a) in acc.iter().enumerate() {
            out[r * n + j..r * n + j + TILE_COLS].copy_from_slice(a);
        }
        j += TILE_COLS;
    }
    // Column tail: scalar per column, same strict k order.
    while j < n {
        let mut s = [0f32; ROW_BLOCK];
        for (r, sv) in s.iter_mut().enumerate() {
            *sv = out[r * n + j];
        }
        for kk in 0..k {
            let bv = bd[kk * n + j];
            for (r, sv) in s.iter_mut().enumerate() {
                *sv += arows[r][kk] * bv;
            }
        }
        for (r, &sv) in s.iter().enumerate() {
            out[r * n + j] = sv;
        }
        j += 1;
    }
}

/// Runs the multi-row micro-kernel over a chunk of pre-initialized output
/// rows (`chunk.len() == rows.len() * n`), falling back to [`gemm_row`]
/// for the `rows % ROW_BLOCK` tail. Bit-identical to calling [`gemm_row`]
/// on every row.
#[inline]
fn gemm_band(chunk: &mut [f32], rows: std::ops::Range<usize>, ad: &[f32], k: usize, bd: &[f32], n: usize) {
    let count = rows.len();
    let start = rows.start;
    let rb = count / ROW_BLOCK * ROW_BLOCK;
    let mut r = 0;
    while r < rb {
        let row = start + r;
        let arows: [&[f32]; ROW_BLOCK] =
            std::array::from_fn(|i| &ad[(row + i) * k..(row + i + 1) * k]);
        gemm_rows_tile(&mut chunk[r * n..(r + ROW_BLOCK) * n], &arows, bd, n);
        r += ROW_BLOCK;
    }
    while r < count {
        let row = start + r;
        gemm_row(&mut chunk[r * n..(r + 1) * n], &ad[row * k..(row + 1) * k], bd, n);
        r += 1;
    }
}

/// One output row of `C = A·B`: `out += arow · B`, k-blocked by 4.
///
/// `out` must be pre-initialized (zero, or the bias for the fused
/// epilogue); accumulation order over `k` is fixed and chunk-independent.
#[inline]
fn gemm_row(out: &mut [f32], arow: &[f32], bd: &[f32], n: usize) {
    let k = arow.len();
    let kb = k / K_BLOCK * K_BLOCK;
    let mut kk = 0;
    while kk < kb {
        let a = [arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]];
        let b0 = &bd[kk * n..(kk + 1) * n];
        let b1 = &bd[(kk + 1) * n..(kk + 2) * n];
        let b2 = &bd[(kk + 2) * n..(kk + 3) * n];
        let b3 = &bd[(kk + 3) * n..(kk + 4) * n];
        axpy4(out, a, b0, b1, b2, b3);
        kk += K_BLOCK;
    }
    while kk < k {
        axpy1(out, arow[kk], &bd[kk * n..(kk + 1) * n]);
        kk += 1;
    }
}

/// Lane-split dot product: 8 independent partial sums over
/// `chunks_exact(8)`, reduced pairwise, plus a scalar tail. The fixed
/// reduction tree keeps results deterministic while giving the CPU eight
/// concurrent FMA chains.
#[inline(always)]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (x, y) in (&mut ac).zip(&mut bc) {
        for l in 0..LANES {
            lanes[l] += x[l] * y[l];
        }
    }
    let mut tail = 0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    let front = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    let back = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
    (front + back) + tail
}

/// `C = A · B` with `A: m×k`, `B: k×n`, written into `out` (`m·n`,
/// fully overwritten). Allocation-free. Counts `kernel.matmul.flops` when
/// metrics are armed, then delegates to [`matmul_into_raw`].
pub fn matmul_into(a: MatView<'_>, b: MatView<'_>, out: &mut [f32]) {
    record_matmul_flops(a.rows(), a.cols(), b.cols());
    matmul_into_raw(a, b, out);
}

/// The uninstrumented [`matmul_into`] body — public so the kernel
/// microbenchmark can price the observability hook against it.
#[doc(hidden)]
pub fn matmul_into_raw(a: MatView<'_>, b: MatView<'_>, out: &mut [f32]) {
    assert_eq!(a.cols(), b.rows(), "matmul inner dim mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(out.len(), m * n, "matmul output size mismatch");
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(out, m, n, |_, chunk, range| {
        chunk.fill(0.0);
        gemm_band(chunk, range, ad, k, bd, n);
    });
}

/// Fused hidden-layer epilogue: `out = relu(A·B + bias)` (`bias` is
/// broadcast over rows). One pass: the output row is seeded with the bias,
/// accumulated, then rectified while still hot.
pub fn matmul_bias_relu_into(a: MatView<'_>, b: MatView<'_>, bias: &[f32], out: &mut [f32]) {
    record_matmul_flops(a.rows(), a.cols(), b.cols());
    assert_eq!(a.cols(), b.rows(), "matmul inner dim mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(bias.len(), n, "bias length mismatch");
    assert_eq!(out.len(), m * n, "matmul output size mismatch");
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(out, m, n, |_, chunk, range| {
        for orow in chunk.chunks_exact_mut(n) {
            orow.copy_from_slice(bias);
        }
        gemm_band(chunk, range, ad, k, bd, n);
        for v in chunk.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    });
}

/// Linear-layer epilogue without activation: `out = A·B + bias`.
pub fn matmul_bias_into(a: MatView<'_>, b: MatView<'_>, bias: &[f32], out: &mut [f32]) {
    record_matmul_flops(a.rows(), a.cols(), b.cols());
    assert_eq!(a.cols(), b.rows(), "matmul inner dim mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(bias.len(), n, "bias length mismatch");
    assert_eq!(out.len(), m * n, "matmul output size mismatch");
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(out, m, n, |_, chunk, range| {
        for orow in chunk.chunks_exact_mut(n) {
            orow.copy_from_slice(bias);
        }
        gemm_band(chunk, range, ad, k, bd, n);
    });
}

/// `C = Aᵀ · B` with `A: m×k`, `B: m×n`, written into `out` (`k·n`,
/// fully overwritten). Allocation-free.
///
/// This is the weight-gradient kernel (`dW = Xᵀ · dY`); `out` may alias a
/// sub-slice of a flat gradient buffer, which is exactly how
/// [`crate::mlp::Mlp::backward_ws`] uses it. The transpose is fused into
/// the tile indexing: an `8×16` register tile of `C` (8 consecutive `kk`
/// rows — a *contiguous* 8-wide block of each `A` row — times 16 `B`
/// columns) accumulates across the entire `i` loop, so `C` is written
/// exactly once and each loaded `B` block serves eight output rows.
/// Accumulation per element is strict increasing-`i` order.
pub fn matmul_tn_into(a: MatView<'_>, b: MatView<'_>, out: &mut [f32]) {
    record_matmul_flops(a.rows(), a.cols(), b.cols());
    assert_eq!(a.rows(), b.rows(), "matmul_tn outer dim mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(out.len(), k * n, "matmul_tn output size mismatch");
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(out, k, n, |_, chunk, range| {
        let rows = range.len();
        let start = range.start;
        let rb = rows / ROW_BLOCK * ROW_BLOCK;
        let mut r = 0;
        while r < rb {
            gemm_tn_band(&mut chunk[r * n..(r + ROW_BLOCK) * n], start + r, ad, m, k, bd, n);
            r += ROW_BLOCK;
        }
        // Row tail (`kk` rows beyond the last full tile): one output row
        // at a time, still strict increasing-i accumulation.
        while r < rows {
            let kk = start + r;
            let orow = &mut chunk[r * n..(r + 1) * n];
            orow.fill(0.0);
            for i in 0..m {
                axpy1(orow, ad[i * k + kk], &bd[i * n..(i + 1) * n]);
            }
            r += 1;
        }
    });
}

/// [`ROW_BLOCK`] output rows of `C = Aᵀ·B` starting at row `kk0`,
/// register-tiled exactly like [`gemm_rows_tile`]: the `8×16` tile
/// accumulates in strict increasing-`i` order across the whole outer
/// dimension, `B` blocks are loaded once per eight output rows, and the
/// band (`out`, length `ROW_BLOCK·n`) is written exactly once.
#[inline]
fn gemm_tn_band(out: &mut [f32], kk0: usize, ad: &[f32], m: usize, k: usize, bd: &[f32], n: usize) {
    debug_assert_eq!(out.len(), ROW_BLOCK * n);
    let nb = n / TILE_COLS * TILE_COLS;
    let mut j = 0;
    while j < nb {
        // The accumulator tile is stored TRANSPOSED (`acc[l][rr]`): the
        // contiguous 8-float `A` block makes LLVM vectorize across `rr`,
        // and with `rr` as the contiguous axis that vectorization hits
        // plain vector adds instead of stack gather/scatters. The
        // transposed write-back at the end is amortized over the `i` loop.
        let mut acc = [[0f32; ROW_BLOCK]; TILE_COLS];
        for i in 0..m {
            let bblk: &[f32; TILE_COLS] =
                bd[i * n + j..i * n + j + TILE_COLS].try_into().unwrap();
            let ablk: &[f32; ROW_BLOCK] =
                ad[i * k + kk0..i * k + kk0 + ROW_BLOCK].try_into().unwrap();
            for (l, a) in acc.iter_mut().enumerate() {
                let bv = bblk[l];
                for rr in 0..ROW_BLOCK {
                    a[rr] += ablk[rr] * bv;
                }
            }
        }
        for (l, a) in acc.iter().enumerate() {
            for (rr, &v) in a.iter().enumerate() {
                out[rr * n + j + l] = v;
            }
        }
        j += TILE_COLS;
    }
    // Column tail: scalar per column, same strict i order.
    while j < n {
        let mut s = [0f32; ROW_BLOCK];
        for i in 0..m {
            let bv = bd[i * n + j];
            let ablk = &ad[i * k + kk0..i * k + kk0 + ROW_BLOCK];
            for (rr, sv) in s.iter_mut().enumerate() {
                *sv += ablk[rr] * bv;
            }
        }
        for (rr, &sv) in s.iter().enumerate() {
            out[rr * n + j] = sv;
        }
        j += 1;
    }
}

/// `C = A · Bᵀ` with `A: m×k`, `B: n×k`, written into `out` (`m·n`,
/// fully overwritten). Allocation-free.
///
/// This is the input-gradient kernel (`dX = dY · Wᵀ`): each output element
/// is a dot product of two contiguous rows, computed with the lane-split
/// accumulator of [`dot_lanes`].
pub fn matmul_nt_into(a: MatView<'_>, b: MatView<'_>, out: &mut [f32]) {
    record_matmul_flops(a.rows(), a.cols(), b.rows());
    assert_eq!(a.cols(), b.cols(), "matmul_nt inner dim mismatch");
    let (m, k) = a.shape();
    let n = b.rows();
    assert_eq!(out.len(), m * n, "matmul_nt output size mismatch");
    let (ad, bd) = (a.as_slice(), b.as_slice());
    par_chunks_mut(out, m, n, |_, chunk, range| {
        for (local, row) in range.enumerate() {
            let arow = &ad[row * k..(row + 1) * k];
            let orow = &mut chunk[local * n..(local + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot_lanes(arow, &bd[j * k..(j + 1) * k]);
            }
        }
    });
}

/// `C = A · B` into a fresh matrix (allocating wrapper of [`matmul_into`]).
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a.view(), b.view(), c.as_mut_slice());
    c
}

/// `C = Aᵀ · B` into a fresh matrix (allocating wrapper of
/// [`matmul_tn_into`]).
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_tn_into(a.view(), b.view(), c.as_mut_slice());
    c
}

/// `C = A · Bᵀ` into a fresh matrix (allocating wrapper of
/// [`matmul_nt_into`]).
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_nt_into(a.view(), b.view(), c.as_mut_slice());
    c
}

/// Adds a row-broadcast bias: `X[i,·] += bias`.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(x.cols(), bias.len(), "bias length mismatch");
    for i in 0..x.rows() {
        for (v, &b) in x.row_mut(i).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Column sums into a caller-provided buffer (`out.len() == x.cols()`,
/// fully overwritten). The bias gradient: `db = Σ_i dY[i,·]`.
pub fn col_sums_into(x: &Matrix, out: &mut [f32]) {
    assert_eq!(out.len(), x.cols(), "col_sums output size mismatch");
    out.fill(0.0);
    for i in 0..x.rows() {
        for (o, &v) in out.iter_mut().zip(x.row(i)) {
            *o += v;
        }
    }
}

/// Column sums (allocating wrapper of [`col_sums_into`]).
pub fn col_sums(x: &Matrix) -> Vec<f32> {
    let mut out = vec![0f32; x.cols()];
    col_sums_into(x, &mut out);
    out
}

/// In-place ReLU; returns nothing, the mask is recoverable from the output
/// (`y > 0`).
pub fn relu_inplace(x: &mut Matrix) {
    for v in x.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward through ReLU: zeroes `grad` wherever the forward output was 0.
pub fn relu_backward_inplace(grad: &mut Matrix, forward_out: &Matrix) {
    assert_eq!(grad.shape(), forward_out.shape());
    for (g, &y) in grad.as_mut_slice().iter_mut().zip(forward_out.as_slice()) {
        if y <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Row-wise softmax into a new matrix (numerically stable).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// Row-wise softmax in place.
pub fn softmax_rows_inplace(x: &mut Matrix) {
    let cols = x.cols();
    if cols == 0 {
        return;
    }
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Records `2·members·plen` into the `aggregate.axpy_flops` counter (one
/// multiply-add per member per parameter). Same caching discipline as
/// [`record_matmul_flops`]: `OnceLock` handle, relaxed adds, nothing on
/// the disarmed path but one level load.
#[inline]
fn record_aggregate_axpy_flops(members: usize, plen: usize) {
    use std::sync::{Arc, OnceLock};
    if !fedgta_obs::metrics_on() {
        return;
    }
    static FLOPS: OnceLock<Arc<fedgta_obs::Counter>> = OnceLock::new();
    FLOPS
        .get_or_init(|| fedgta_obs::global().counter("aggregate.axpy_flops"))
        .add(2 * (members as u64) * (plen as u64));
}

/// Blocked weighted row sum — FedGTA's Eq. 7 personalized-aggregation
/// kernel: `out[j] = Σ_m weights[m] · params[members[m]][j]`, accumulated
/// in `f64` and rounded once, overwriting `out` (no zero-fill pass, no
/// per-call `vec![0f64; plen]`).
///
/// The parameter axis is processed in [`COL_BLOCK`]-wide register
/// accumulators while the member list streams past — the dense-GEMM
/// blocking applied to the aggregation axpy. Each output element still
/// sees its additions in **member order**, so the result is bit-identical
/// to the scalar member-outer loop
/// (`for m { for j { agg[j] += w·p } }` with `f64` accumulators) that it
/// replaces, for any block width.
///
/// Every `params[members[m]]` row must have at least `out.len()` elements.
/// Records the `aggregate.axpy_flops` counter when metrics are armed.
pub fn weighted_sum_rows_into(
    params: &[&[f32]],
    members: &[usize],
    weights: &[f32],
    out: &mut [f32],
) {
    assert_eq!(members.len(), weights.len(), "one weight per member");
    record_aggregate_axpy_flops(members.len(), out.len());
    let plen = out.len();
    let full = plen / COL_BLOCK * COL_BLOCK;
    let mut jb = 0usize;
    while jb < full {
        let mut acc = [0f64; COL_BLOCK];
        for (&m, &w) in members.iter().zip(weights) {
            let src = &params[m][jb..jb + COL_BLOCK];
            let wd = w as f64;
            for l in 0..COL_BLOCK {
                acc[l] += wd * src[l] as f64;
            }
        }
        for l in 0..COL_BLOCK {
            out[jb + l] = acc[l] as f32;
        }
        jb += COL_BLOCK;
    }
    if jb < plen {
        let w = plen - jb;
        let mut acc = [0f64; COL_BLOCK];
        for (&m, &wt) in members.iter().zip(weights) {
            let src = &params[m][jb..plen];
            let wd = wt as f64;
            for l in 0..w {
                acc[l] += wd * src[l] as f64;
            }
        }
        for (l, a) in acc.iter().enumerate().take(w) {
            out[jb + l] = *a as f32;
        }
    }
    // Zero members leaves the register accumulators at 0.0, which the
    // store loops above have already written — overwrite semantics hold
    // even for an empty member set.
}

/// Sparse-dense product wrapper: `Y = A · X` for a CSR adjacency.
///
/// The output has `a.num_nodes()` rows (not `x.rows()` — the seed version
/// silently assumed a square product); the dense operand must have exactly
/// one row per adjacency node.
pub fn spmm_csr(a: &fedgta_graph::Csr, x: &Matrix) -> Matrix {
    let mut y = Matrix::zeros(a.num_nodes(), x.cols());
    spmm_csr_into(a, x, &mut y);
    y
}

/// Allocation-free [`spmm_csr`]: `Y = A · X` into a caller-provided matrix
/// of shape `(a.num_nodes(), x.cols())`.
pub fn spmm_csr_into(a: &fedgta_graph::Csr, x: &Matrix, y: &mut Matrix) {
    assert_eq!(
        x.rows(),
        a.num_nodes(),
        "spmm_csr: dense operand must have one row per adjacency node"
    );
    assert_eq!(
        y.shape(),
        (a.num_nodes(), x.cols()),
        "spmm_csr: output shape mismatch"
    );
    fedgta_graph::spmm::spmm_into(a, x.as_slice(), x.cols(), y.as_mut_slice());
}

/// Scalar reference kernels — the seed implementations, retained verbatim
/// (branchy zero-skip and all) as the ground truth for property tests and
/// the "naive" baseline of the kernel microbenchmark suite. Not used on
/// any hot path.
pub mod naive {
    use crate::tensor::Matrix;

    /// Reference `C = A · B` (i-k-j ordering, zero-skip branch).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul inner dim mismatch");
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        let (ad, bd) = (a.as_slice(), b.as_slice());
        for row in 0..m {
            let arow = &ad[row * k..(row + 1) * k];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[kk * n..(kk + 1) * n];
                let out = &mut c.as_mut_slice()[row * n..(row + 1) * n];
                for (o, &bv) in out.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        c
    }

    /// Reference `C = Aᵀ · B`.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_tn outer dim mismatch");
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(k, n);
        for i in 0..m {
            for kk in 0..k {
                let av = a.get(i, kk);
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = c.get(kk, j) + av * b.get(i, j);
                    c.set(kk, j, v);
                }
            }
        }
        c
    }

    /// Reference `C = A · Bᵀ` (sequential single-accumulator dot).
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_nt inner dim mismatch");
        let (m, k) = a.shape();
        let n = b.rows();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(j, kk);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    /// Reference `Y = A · X` for CSR `A` (row-major dense `x`).
    pub fn spmm(a: &fedgta_graph::Csr, x: &[f32], cols: usize) -> Vec<f32> {
        let n = a.num_nodes();
        assert_eq!(x.len(), n * cols, "spmm operand size mismatch");
        let mut y = vec![0f32; n * cols];
        for row in 0..n {
            let out = &mut y[row * cols..(row + 1) * cols];
            let u = row as u32;
            let neigh = a.neighbors(u);
            match a.neighbor_weights(u) {
                Some(ws) => {
                    for (&v, &w) in neigh.iter().zip(ws) {
                        let src = &x[v as usize * cols..(v as usize + 1) * cols];
                        for (o, &s) in out.iter_mut().zip(src) {
                            *o += w * s;
                        }
                    }
                }
                None => {
                    for &v in neigh {
                        let src = &x[v as usize * cols..(v as usize + 1) * cols];
                        for (o, &s) in out.iter_mut().zip(src) {
                            *o += s;
                        }
                    }
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    fn gen(r: usize, c: usize, seed: u64) -> Matrix {
        Matrix::from_vec(
            r,
            c,
            (0..r * c)
                .map(|i| (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 97) as f32 / 48.5) - 1.0)
                .collect(),
        )
    }

    #[test]
    fn weighted_sum_rows_matches_scalar_reference_bitwise() {
        // Reference: the member-outer scalar loop with f64 accumulation
        // that personalized_aggregate used before the blocked kernel.
        for &plen in &[1usize, 7, 16, 17, 33, 130] {
            let rows: Vec<Matrix> = (0..5).map(|s| gen(1, plen, s as u64 * 11 + 1)).collect();
            let params: Vec<&[f32]> = rows.iter().map(|m| m.as_slice()).collect();
            let members = [3usize, 0, 4, 2];
            let weights = [0.37f32, 0.11, 0.42, 0.10];
            let mut agg = vec![0f64; plen];
            for (&m, &w) in members.iter().zip(&weights) {
                for (o, &p) in agg.iter_mut().zip(params[m]) {
                    *o += w as f64 * p as f64;
                }
            }
            let want: Vec<f32> = agg.iter().map(|&v| v as f32).collect();
            let mut got = vec![9f32; plen]; // garbage: must be overwritten
            weighted_sum_rows_into(&params, &members, &weights, &mut got);
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits(), "plen={plen}");
            }
        }
    }

    #[test]
    fn weighted_sum_rows_empty_members_zeroes_out() {
        let mut out = vec![5f32; 20];
        weighted_sum_rows_into(&[], &[], &[], &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_kernels_match_naive_at_awkward_shapes() {
        // Shapes deliberately not multiples of the 4×4 block.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (7, 9, 5), (4, 4, 4), (5, 13, 6), (2, 17, 3)] {
            let a = gen(m, k, 1);
            let b = gen(k, n, 2);
            assert_close(&matmul(&a, &b), &naive::matmul(&a, &b));
            let a2 = gen(m, k, 3);
            let b2 = gen(m, n, 4);
            assert_close(&matmul_tn(&a2, &b2), &naive::matmul_tn(&a2, &b2));
            let a3 = gen(m, k, 5);
            let b3 = gen(n, k, 6);
            assert_close(&matmul_nt(&a3, &b3), &naive::matmul_nt(&a3, &b3));
        }
    }

    #[test]
    fn blocked_kernels_handle_zeros_without_the_skip_branch() {
        // The seed kernels special-cased av == 0.0; the blocked kernels
        // must produce the same values (up to zero signs) without it.
        let mut a = gen(5, 9, 7);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = gen(9, 6, 8);
        assert_close(&matmul(&a, &b), &naive::matmul(&a, &b));
        let b2 = gen(5, 6, 9);
        assert_close(&matmul_tn(&a, &b2), &naive::matmul_tn(&a, &b2));
    }

    #[test]
    fn into_variants_match_wrappers_and_overwrite_garbage() {
        let a = gen(6, 10, 11);
        let b = gen(10, 7, 12);
        let mut out = vec![f32::NAN; 6 * 7];
        matmul_into(a.view(), b.view(), &mut out);
        assert_eq!(out, matmul(&a, &b).into_vec());

        let bt = gen(6, 7, 13);
        let mut out_tn = vec![f32::NAN; 10 * 7];
        matmul_tn_into(a.view(), bt.view(), &mut out_tn);
        assert_eq!(out_tn, matmul_tn(&a, &bt).into_vec());

        let bn = gen(7, 10, 14);
        let mut out_nt = vec![f32::NAN; 6 * 7];
        matmul_nt_into(a.view(), bn.view(), &mut out_nt);
        assert_eq!(out_nt, matmul_nt(&a, &bn).into_vec());
    }

    #[test]
    fn fused_epilogue_matches_unfused_pipeline() {
        let a = gen(5, 6, 21);
        let b = gen(6, 9, 22);
        let bias: Vec<f32> = (0..9).map(|i| (i as f32 - 4.0) * 0.3).collect();
        let mut fused = vec![0f32; 5 * 9];
        matmul_bias_relu_into(a.view(), b.view(), &bias, &mut fused);
        let mut unfused = matmul(&a, &b);
        add_bias(&mut unfused, &bias);
        relu_inplace(&mut unfused);
        for (x, y) in fused.iter().zip(unfused.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        assert!(fused.iter().all(|&v| v >= 0.0));

        let mut linear = vec![0f32; 5 * 9];
        matmul_bias_into(a.view(), b.view(), &bias, &mut linear);
        let mut expect = matmul(&a, &b);
        add_bias(&mut expect, &bias);
        for (x, y) in linear.iter().zip(expect.as_slice()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        // Random-ish deterministic matrices.
        let a = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32 * 0.7).sin()).collect());
        let b = Matrix::from_vec(4, 5, (0..20).map(|i| (i as f32 * 0.3).cos()).collect());
        // Aᵀ·B via explicit transpose.
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                at.set(j, i, a.get(i, j));
            }
        }
        assert_close(&matmul_tn(&a, &b), &matmul(&at, &b));

        let c = Matrix::from_vec(5, 3, (0..15).map(|i| (i as f32 * 0.9).sin()).collect());
        let mut ct = Matrix::zeros(3, 5);
        for i in 0..5 {
            for j in 0..3 {
                ct.set(j, i, c.get(i, j));
            }
        }
        // A·Cᵀ  (A: 4×3, C: 5×3)
        assert_close(&matmul_nt(&a, &c), &matmul(&a, &ct));
    }

    #[test]
    fn bias_and_col_sums_are_adjoint() {
        let mut x = Matrix::zeros(3, 2);
        add_bias(&mut x, &[1.0, -2.0]);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        assert_eq!(col_sums(&x), vec![3.0, -6.0]);
    }

    #[test]
    fn relu_forward_backward() {
        let mut x = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        relu_inplace(&mut x);
        assert_eq!(x.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
        let mut g = Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        relu_backward_inplace(&mut g, &x);
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1001.0, 999.0]]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!(s.get(1, 1) > s.get(1, 0)); // stable at large magnitudes
    }

    #[test]
    fn spmm_csr_matches_dense() {
        use fedgta_graph::EdgeList;
        let mut el = EdgeList::new(3);
        el.push_undirected(0, 1).unwrap();
        el.push_undirected(1, 2).unwrap();
        let g = el.to_csr();
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]);
        let y = spmm_csr(&g, &x);
        assert_eq!(y.shape(), (g.num_nodes(), 1));
        assert_eq!(y.as_slice(), &[2.0, 5.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "one row per adjacency node")]
    fn spmm_csr_rejects_row_mismatch() {
        use fedgta_graph::EdgeList;
        let g = EdgeList::new(3).to_csr();
        let x = Matrix::zeros(4, 2); // 4 rows vs 3 nodes: must not be silently accepted
        spmm_csr(&g, &x);
    }
}
