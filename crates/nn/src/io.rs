//! Model checkpointing: flat parameter vectors with a versioned header.
//!
//! All models in this crate expose their parameters as one flat `f32`
//! buffer, so a checkpoint is the buffer plus a length guard — enough for
//! clients to persist/restore local models or for a server to snapshot the
//! global model between deployments.

use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"FGTP";
const VERSION: u8 = 1;

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a parameter checkpoint stream.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// The stored vector's length differs from what the model expects.
    LengthMismatch {
        /// Length the model expects.
        expected: usize,
        /// Length found in the stream.
        found: usize,
    },
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a parameter checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::LengthMismatch { expected, found } => {
                write!(f, "checkpoint has {found} params, model expects {expected}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Writes a flat parameter vector as a checkpoint.
pub fn save_params<W: Write>(w: &mut W, params: &[f32]) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for &p in params {
        w.write_all(&p.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a checkpoint, validating against `expected_len` (the target
/// model's [`crate::GraphModel::num_params`]).
pub fn load_params<R: Read>(r: &mut R, expected_len: usize) -> Result<Vec<f32>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let mut ver = [0u8; 1];
    r.read_exact(&mut ver)?;
    if ver[0] != VERSION {
        return Err(CheckpointError::BadVersion(ver[0]));
    }
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let found = u64::from_le_bytes(len8) as usize;
    if found != expected_len {
        return Err(CheckpointError::LengthMismatch {
            expected: expected_len,
            found,
        });
    }
    let mut out = Vec::with_capacity(found);
    let mut b = [0u8; 4];
    for _ in 0..found {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{build_model, ModelConfig, ModelKind};

    #[test]
    fn roundtrip_restores_model_exactly() {
        let cfg = ModelConfig {
            kind: ModelKind::Sign,
            hidden: 8,
            layers: 2,
            k: 2,
            seed: 3,
            ..ModelConfig::default()
        };
        let m = build_model(&cfg, 6, 3);
        let mut buf = Vec::new();
        save_params(&mut buf, &m.params()).unwrap();
        let loaded = load_params(&mut buf.as_slice(), m.num_params()).unwrap();
        assert_eq!(loaded, m.params());
    }

    #[test]
    fn wrong_length_is_rejected() {
        let mut buf = Vec::new();
        save_params(&mut buf, &[1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            load_params(&mut buf.as_slice(), 4),
            Err(CheckpointError::LengthMismatch {
                expected: 4,
                found: 3
            })
        ));
    }

    #[test]
    fn garbage_is_rejected() {
        let buf = b"oops".to_vec();
        assert!(load_params(&mut buf.as_slice(), 1).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        save_params(&mut buf, &[1.0; 10]).unwrap();
        buf.truncate(buf.len() - 6);
        assert!(matches!(
            load_params(&mut buf.as_slice(), 10),
            Err(CheckpointError::Io(_))
        ));
    }
}
