//! A reusable scratch-buffer arena for the allocation-free kernel path.
//!
//! Every training epoch of the seed code allocated (and freed) dozens of
//! full-size matrices: forward activations, caches, gradients, gathered
//! batches. [`Workspace`] turns that churn into a checkout/return
//! protocol: [`Workspace::take`] hands out a buffer (reusing a pooled one
//! when its capacity suffices), and [`Workspace::give`] returns it for the
//! next step. After a one-epoch warmup the pool is saturated and steady-
//! state training performs **O(1) heap allocations per epoch** (verified
//! by `crates/nn/tests/alloc_count.rs` with a counting allocator).
//!
//! The arena is deliberately dumb — a best-fit scan over at most
//! [`MAX_POOLED`] buffers, no size classes, no thread-safety. Each model
//! owns one (models are `Send`, not `Sync`, and federated clients are
//! disjoint `&mut` slots under [`fedgta_graph::par::par_map_indexed`]), so
//! a lock-free single-owner pool is exactly right.
//!
//! `Clone` yields an **empty** workspace: pooled scratch is an optimization,
//! not state, and cloning a model (e.g. broadcasting global parameters to
//! clients) must not duplicate megabytes of dead buffers.

use crate::tensor::Matrix;

/// Upper bound on pooled buffers; returns beyond this are dropped.
const MAX_POOLED: usize = 64;

/// Raises the `workspace.high_water_bytes` gauge to the capacity of the
/// largest single buffer ever checked out (across all workspaces in the
/// process). Disarmed: one relaxed load.
#[inline]
fn record_high_water(cap_elems: usize) {
    use std::sync::{Arc, OnceLock};
    if !fedgta_obs::metrics_on() {
        return;
    }
    static HWM: OnceLock<Arc<fedgta_obs::Gauge>> = OnceLock::new();
    HWM.get_or_init(|| fedgta_obs::global().gauge("workspace.high_water_bytes"))
        .set_max((cap_elems * std::mem::size_of::<f32>()) as u64);
}

/// A pool of reusable `Vec<f32>` scratch buffers (see module docs).
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Clone for Workspace {
    /// Clones to an *empty* workspace — scratch is never model state.
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a zeroed buffer of exactly `len` elements.
    ///
    /// Best-fit: the smallest pooled buffer whose *capacity* covers `len`
    /// is reused (no reallocation); otherwise a fresh buffer is allocated.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= len
                && best.is_none_or(|j: usize| self.pool[j].capacity() > b.capacity())
            {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        buf.clear();
        buf.resize(len, 0.0);
        record_high_water(buf.capacity());
        buf
    }

    /// Checks out a zeroed `rows × cols` matrix.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Returns a buffer to the pool (dropped if the pool is full or the
    /// buffer owns no capacity).
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.pool.len() < MAX_POOLED {
            self.pool.push(buf);
        }
    }

    /// Returns a matrix's buffer to the pool.
    pub fn give_matrix(&mut self, m: Matrix) {
        self.give(m.into_vec());
    }

    /// Number of buffers currently pooled (for tests/diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_reuses_capacity() {
        let mut ws = Workspace::new();
        let buf = ws.take(100);
        let ptr = buf.as_ptr();
        ws.give(buf);
        assert_eq!(ws.pooled(), 1);
        // Same-size request reuses the exact buffer.
        let again = ws.take(100);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.len(), 100);
        // Smaller request also reuses it (capacity covers).
        ws.give(again);
        let smaller = ws.take(10);
        assert_eq!(smaller.as_ptr(), ptr);
        assert_eq!(smaller.len(), 10);
    }

    #[test]
    fn take_zeroes_recycled_buffers() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(4);
        buf.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        ws.give(buf);
        assert_eq!(ws.take(4), vec![0.0; 4]);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take(1000);
        let small = ws.take(16);
        let small_ptr = small.as_ptr();
        ws.give(big);
        ws.give(small);
        // A 10-element request must grab the 16-capacity buffer, not the
        // 1000-capacity one.
        let got = ws.take(10);
        assert_eq!(got.as_ptr(), small_ptr);
    }

    #[test]
    fn matrix_roundtrip() {
        let mut ws = Workspace::new();
        let m = ws.take_matrix(3, 4);
        assert_eq!(m.shape(), (3, 4));
        ws.give_matrix(m);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn clone_is_empty() {
        let mut ws = Workspace::new();
        ws.give(vec![0.0; 32]);
        assert_eq!(ws.clone().pooled(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..(MAX_POOLED + 10) {
            ws.give(vec![0.0; 8]);
        }
        assert_eq!(ws.pooled(), MAX_POOLED);
        ws.give(Vec::new()); // zero-capacity buffers are never pooled
        assert_eq!(ws.pooled(), MAX_POOLED);
    }
}
