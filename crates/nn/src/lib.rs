//! # fedgta-nn — minimal neural-network stack with exact manual backprop
//!
//! burn/candle lack graph layers, so this crate implements the ML substrate
//! the paper's local models need, from scratch:
//!
//! - [`tensor::Matrix`]: row-major `f32` dense matrices;
//! - [`ops`]: blocked, cache-friendly matmul kernels (`A·B`, `Aᵀ·B`, `A·Bᵀ`)
//!   parallelized over row chunks;
//! - [`loss`]: masked softmax cross-entropy with exact gradients, plus soft-
//!   target CE (for FedGL pseudo-labels);
//! - [`optim`]: SGD-with-momentum and Adam over flat parameter buffers;
//! - [`mlp`]: a multi-layer perceptron over one flat parameter buffer with
//!   forward caches, exact backward, and *hidden-gradient injection* (the
//!   mechanism MOON's model-contrastive loss plugs into);
//! - [`models`]: the seven GNN backbones of the paper — GCN, GraphSAGE,
//!   SGC, SIGN, S²GC, GBP, GAMLP — behind one [`models::GraphModel`] trait.
//!
//! Every gradient in this crate is validated against finite differences in
//! tests; federated strategies rely on bit-exact parameter flattening.

pub mod init;
pub mod io;
pub mod loss;
pub mod metrics;
pub mod mlp;
pub mod models;
pub mod ops;
pub mod optim;
pub mod tensor;
pub mod workspace;

pub use mlp::Mlp;
pub use models::{GraphDataset, GraphModel, TrainHooks};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::{MatView, Matrix};
pub use workspace::Workspace;

/// Errors produced by the NN stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Matrix dimensions incompatible for the requested op.
    ShapeMismatch {
        context: &'static str,
        lhs: (usize, usize),
        rhs: (usize, usize),
    },
    /// Flat parameter buffer length did not match the model.
    ParamLengthMismatch { expected: usize, found: usize },
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { context, lhs, rhs } => write!(
                f,
                "shape mismatch in {context}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NnError::ParamLengthMismatch { expected, found } => {
                write!(f, "parameter buffer length {found}, model expects {expected}")
            }
        }
    }
}

impl std::error::Error for NnError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
