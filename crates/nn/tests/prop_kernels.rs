//! Property tests for the register-blocked kernels: agreement with the
//! retained naive scalar kernels over random shapes, and the determinism
//! contract (bit-identical output for any worker-thread count).

use fedgta_graph::par::refresh_thread_env;
use fedgta_graph::EdgeList;
use fedgta_nn::ops::{
    self, matmul, matmul_bias_into, matmul_bias_relu_into, matmul_into, matmul_nt, matmul_nt_into,
    matmul_tn, matmul_tn_into, spmm_csr_into,
};
use fedgta_nn::Matrix;
use proptest::prelude::*;

fn gen(r: usize, c: usize, seed: u64) -> Matrix {
    Matrix::from_vec(
        r,
        c,
        (0..r * c)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 7919) % 97) as f32
                    / 48.5)
                    - 1.0
            })
            .collect(),
    )
}

fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            (x - y).abs() < 1e-4,
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Explicit awkward shapes from the kernel spec: 1×1, 3×5, 7×9 — none a
/// multiple of the register tile — plus a handful that straddle the 8-row
/// and 16-column block boundaries.
#[test]
fn blocked_matches_naive_at_spec_shapes() {
    for &(m, k, n) in &[
        (1, 1, 1),
        (3, 5, 7),
        (7, 9, 5),
        (8, 16, 16),
        (9, 17, 15),
        (16, 8, 33),
        (31, 2, 1),
    ] {
        let a = gen(m, k, 1);
        let b = gen(k, n, 2);
        assert_close(&matmul(&a, &b), &ops::naive::matmul(&a, &b), "matmul");
        let a2 = gen(m, k, 3);
        let b2 = gen(m, n, 4);
        assert_close(
            &matmul_tn(&a2, &b2),
            &ops::naive::matmul_tn(&a2, &b2),
            "matmul_tn",
        );
        let a3 = gen(m, k, 5);
        let b3 = gen(n, k, 6);
        assert_close(
            &matmul_nt(&a3, &b3),
            &ops::naive::matmul_nt(&a3, &b3),
            "matmul_nt",
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes across several tile boundaries: every blocked kernel
    /// agrees with its naive scalar reference.
    #[test]
    fn blocked_matches_naive_at_random_shapes(
        (m, k, n) in (1usize..40, 1usize..40, 1usize..40),
        seed in 0u64..1000,
    ) {
        let a = gen(m, k, seed);
        let b = gen(k, n, seed + 1);
        assert_close(&matmul(&a, &b), &ops::naive::matmul(&a, &b), "matmul");
        let b_tn = gen(m, n, seed + 2);
        assert_close(&matmul_tn(&a, &b_tn), &ops::naive::matmul_tn(&a, &b_tn), "matmul_tn");
        let b_nt = gen(n, k, seed + 3);
        assert_close(&matmul_nt(&a, &b_nt), &ops::naive::matmul_nt(&a, &b_nt), "matmul_nt");
    }

    /// SpMM against the naive per-row gather, on a ring lattice with
    /// a non-tile-aligned feature width.
    #[test]
    fn spmm_matches_naive(
        nodes in 2usize..60,
        cols in 1usize..20,
        seed in 0u64..100,
    ) {
        let mut el = EdgeList::new(nodes);
        for i in 0..nodes as u32 {
            let j = (i + 1) % nodes as u32;
            if i < j {
                el.push_undirected(i, j).unwrap();
            }
        }
        let a = el.to_csr();
        let x = gen(nodes, cols, seed);
        let mut y = Matrix::zeros(nodes, cols);
        spmm_csr_into(&a, &x, &mut y);
        let want = ops::naive::spmm(&a, x.as_slice(), cols);
        for (g, w) in y.as_slice().iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-4);
        }
    }
}

/// The determinism contract, end to end: every `_into` kernel produces
/// bit-identical output under `FEDGTA_THREADS=1` and `FEDGTA_THREADS=4`.
///
/// A single `#[test]` (not one per kernel) because `FEDGTA_THREADS` is
/// process-global: the test harness runs tests concurrently and parallel
/// env mutation would race.
#[test]
fn into_kernels_bit_identical_across_thread_counts() {
    // Row count well above `2 * threads` so the 4-thread run actually
    // splits; odd sizes so chunk boundaries are ragged.
    let (m, k, n) = (67usize, 19usize, 23usize);
    let a = gen(m, k, 11);
    let w = gen(k, n, 12);
    let dy = gen(m, n, 13);
    let bn = gen(n, k, 14);
    let bias: Vec<f32> = (0..n).map(|i| (i as f32 - 10.0) * 0.05).collect();
    let mut el = EdgeList::new(m);
    for i in 0..m as u32 {
        let j = (i + 1) % m as u32;
        if i < j {
            el.push_undirected(i, j).unwrap();
        }
    }
    let csr = el.to_csr();

    let run_all = |threads: &str| -> Vec<Vec<u32>> {
        std::env::set_var("FEDGTA_THREADS", threads);
        refresh_thread_env();
        let mut outs = Vec::new();
        let mut o = vec![0f32; m * n];
        matmul_into(a.view(), w.view(), &mut o);
        outs.push(o.iter().map(|v| v.to_bits()).collect());
        let mut o = vec![0f32; m * n];
        matmul_bias_relu_into(a.view(), w.view(), &bias, &mut o);
        outs.push(o.iter().map(|v| v.to_bits()).collect());
        let mut o = vec![0f32; m * n];
        matmul_bias_into(a.view(), w.view(), &bias, &mut o);
        outs.push(o.iter().map(|v| v.to_bits()).collect());
        let mut o = vec![0f32; k * n];
        matmul_tn_into(a.view(), dy.view(), &mut o);
        outs.push(o.iter().map(|v| v.to_bits()).collect());
        let mut o = vec![0f32; m * n];
        matmul_nt_into(a.view(), bn.view(), &mut o);
        outs.push(o.iter().map(|v| v.to_bits()).collect());
        let mut y = Matrix::zeros(m, k);
        spmm_csr_into(&csr, &a, &mut y);
        outs.push(y.as_slice().iter().map(|v| v.to_bits()).collect());
        outs
    };

    let one = run_all("1");
    let four = run_all("4");
    std::env::remove_var("FEDGTA_THREADS");
    refresh_thread_env();

    let names = [
        "matmul_into",
        "matmul_bias_relu_into",
        "matmul_bias_into",
        "matmul_tn_into",
        "matmul_nt_into",
        "spmm_csr_into",
    ];
    for ((name, a1), a4) in names.iter().zip(&one).zip(&four) {
        assert_eq!(a1, a4, "{name} differs between 1 and 4 threads");
    }
}
