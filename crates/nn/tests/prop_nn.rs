//! Property-based tests for the NN stack's numerical invariants.

use fedgta_nn::loss::softmax_ce;
use fedgta_nn::ops::{matmul, matmul_nt, matmul_tn, softmax_rows};
use fedgta_nn::{Matrix, Mlp};
use proptest::prelude::*;

fn arb_matrix(max_r: usize, max_c: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c).prop_map(move |v| Matrix::from_vec(r, c, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_rows_are_distributions(m in arb_matrix(8, 8)) {
        let s = softmax_rows(&m);
        for i in 0..s.rows() {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn matmul_identity_is_noop(m in arb_matrix(6, 6)) {
        let n = m.cols();
        let mut eye = Matrix::zeros(n, n);
        for i in 0..n {
            eye.set(i, i, 1.0);
        }
        let out = matmul(&m, &eye);
        for (a, b) in out.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_kernels_consistent(
        (m, ka, kb) in (1usize..6, 1usize..5, 1usize..4),
        seed in 0u64..1000,
    ) {
        // A: m×ka, B: m×kb share the outer dim; (Aᵀ B)ᵀ == Bᵀ A.
        let gen = |r: usize, c: usize, s: u64| {
            Matrix::from_vec(r, c, (0..r * c).map(|i| (((i as u64 * 2654435761 + s) % 97) as f32 / 48.5) - 1.0).collect())
        };
        let a = gen(m, ka, seed);
        let b = gen(m, kb, seed.wrapping_add(1));
        let atb = matmul_tn(&a, &b);  // ka×kb
        let bta = matmul_tn(&b, &a);  // kb×ka
        for i in 0..atb.rows() {
            for j in 0..atb.cols() {
                prop_assert!((atb.get(i, j) - bta.get(j, i)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn nt_kernel_matches_dot_products(
        (ma, mb, k) in (1usize..5, 1usize..6, 1usize..4),
        seed in 0u64..1000,
    ) {
        // A: ma×k, B: mb×k share the inner dim.
        let gen = |r: usize, c: usize, s: u64| {
            Matrix::from_vec(r, c, (0..r * c).map(|i| (((i as u64 * 1099087573 + s) % 89) as f32 / 44.5) - 1.0).collect())
        };
        let a = gen(ma, k, seed);
        let b = gen(mb, k, seed.wrapping_add(7));
        let c = matmul_nt(&a, &b);
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let dot: f32 = a.row(i).iter().zip(b.row(j)).map(|(&x, &y)| x * y).sum();
                prop_assert!((c.get(i, j) - dot).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn ce_loss_nonnegative_and_grad_rows_sum_to_zero(
        m in arb_matrix(6, 5),
        label_seed in 0u32..5,
    ) {
        let labels: Vec<u32> = (0..m.rows() as u32).map(|i| (i + label_seed) % m.cols() as u32).collect();
        let rows: Vec<u32> = (0..m.rows() as u32).collect();
        let (loss, grad) = softmax_ce(&m, &labels, &rows);
        prop_assert!(loss >= 0.0);
        // Each selected row's gradient sums to zero (softmax minus onehot).
        for i in 0..m.rows() {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn mlp_infer_is_deterministic_and_param_sensitive(seed in 0u64..100) {
        let mut mlp = Mlp::new(&[4, 6, 3], 0.0, seed);
        let x = Matrix::from_vec(3, 4, (0..12).map(|i| (i as f32 / 6.0) - 1.0).collect());
        let a = mlp.infer(&x);
        let b = mlp.infer(&x);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        // Zeroing all params collapses output to the (zero) bias.
        mlp.set_params(&vec![0.0; mlp.num_params()]);
        let z = mlp.infer(&x);
        prop_assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mlp_backward_zero_upstream_gives_zero_grads(seed in 0u64..50) {
        let mut mlp = Mlp::new(&[3, 4, 2], 0.0, seed);
        let x = Matrix::from_vec(2, 3, vec![0.1; 6]);
        let (logits, cache) = mlp.forward(&x, false);
        let d = Matrix::zeros(logits.rows(), logits.cols());
        let (grads, dx) = mlp.backward(&cache, &d, None);
        prop_assert!(grads.iter().all(|&g| g == 0.0));
        prop_assert!(dx.as_slice().iter().all(|&g| g == 0.0));
    }
}
