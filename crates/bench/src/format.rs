//! Plain-text table rendering for the experiment binaries.

/// `mean ± std` in percent, matching the paper's table cells.
pub fn fmt_pm(mean: f64, std: f64) -> String {
    format!("{:.1}±{:.1}", 100.0 * mean, 100.0 * std)
}

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], width: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                s.push_str(&format!(" {:<w$} |", c, w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &width));
        let mut sep = String::from("|");
        for w in &width {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &width));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_pm_is_percent() {
        assert_eq!(fmt_pm(0.823, 0.004), "82.3±0.4");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["xx".into(), "y".into()]);
        let r = t.render();
        assert!(r.contains("| a  | bbbb |"));
        assert!(r.contains("| xx | y    |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
