//! Plain-text table rendering and JSON emission helpers for the
//! experiment binaries (the vendored serde shim is a no-op, so every
//! report serializes itself by hand — these helpers keep that output
//! machine-parseable).

/// `mean ± std` in percent, matching the paper's table cells.
pub fn fmt_pm(mean: f64, std: f64) -> String {
    format!("{:.1}±{:.1}", 100.0 * mean, 100.0 * std)
}

/// Escapes `s` for use inside a JSON string literal (quotes/backslashes
/// escaped, control characters as `\u00XX`; surrounding quotes not
/// included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// A JSON number: finite values via `{}` (round-trip formatting),
/// NaN/Inf as `null` — JSON has no non-finite literals, and a bare
/// `NaN` in a report breaks every parser downstream.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A fixed-decimal JSON number; NaN/Inf render as `null`.
pub fn json_fixed(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], width: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                s.push_str(&format!(" {:<w$} |", c, w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.header, &width));
        let mut sep = String::from("|");
        for w in &width {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&line(row, &width));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_pm_is_percent() {
        assert_eq!(fmt_pm(0.823, 0.004), "82.3±0.4");
    }

    #[test]
    fn json_strings_escape_hostile_input() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_str("x\"y"), "\"x\\\"y\"");
    }

    #[test]
    fn json_numbers_render_nonfinite_as_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        assert_eq!(json_fixed(1.23456, 3), "1.235");
        assert_eq!(json_fixed(f64::NAN, 3), "null");
        assert_eq!(json_fixed(f64::INFINITY, 0), "null");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["xx".into(), "y".into()]);
        let r = t.render();
        assert!(r.contains("| a  | bbbb |"));
        assert!(r.contains("| xx | y    |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
