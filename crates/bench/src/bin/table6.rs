//! Table 6 — ablation study of FedGTA's two components.
//!
//! "w/o Mom." removes moment-based client selection (everyone aggregates
//! with everyone, confidence-weighted); "w/o Conf." keeps selection but
//! weights by training-set size. SGC / GBP / GraphSAGE backbones on the
//! ogbn-products and Reddit stand-ins under both splits.
//!
//! `--sweep` adds the K (moment order) and ε (threshold) sensitivity
//! sweep from DESIGN.md §5.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin table6 [--full] [--sweep]`

use fedgta_bench::{fmt_pm, is_full_run, run_experiment, ExperimentSpec, SplitKind, Table};
use fedgta_nn::models::ModelKind;

fn main() {
    let full = is_full_run();
    let sweep = std::env::args().any(|a| a == "--sweep");
    let datasets = if full {
        vec!["ogbn-products", "reddit"]
    } else {
        vec!["amazon-photo"]
    };
    let models = if full {
        vec![ModelKind::Sgc, ModelKind::Gbp, ModelKind::Sage]
    } else {
        vec![ModelKind::Sgc, ModelKind::Gbp]
    };
    let variants = [
        ("w/o Mom.", "FedGTA-noMom"),
        ("w/o Conf.", "FedGTA-noConf"),
        ("FedGTA", "FedGTA"),
    ];
    let (rounds, runs) = if full { (60, 3) } else { (20, 2) };

    let mut header = vec!["Model".to_string(), "Component".to_string()];
    for d in &datasets {
        header.push(format!("{d} (Louvain)"));
        header.push(format!("{d} (Metis)"));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);

    for model in &models {
        for (label, strat) in variants {
            let mut row = vec![model.name().to_string(), label.to_string()];
            for d in &datasets {
                for split in [SplitKind::Louvain, SplitKind::Metis] {
                    let mut spec = ExperimentSpec::new(d, *model, strat);
                    spec.split = split;
                    spec.rounds = rounds;
                    spec.runs = runs;
                    spec.eval_every = 5;
                    spec.seed = 17;
                    let r = run_experiment(&spec);
                    row.push(fmt_pm(r.mean, r.std));
                    eprintln!(
                        "[table6] {} {} {} {} -> {}",
                        model.name(),
                        label,
                        d,
                        split.name(),
                        fmt_pm(r.mean, r.std)
                    );
                }
            }
            t.row(row);
        }
    }
    println!(
        "Table 6 — FedGTA component ablation, {} rounds, {} runs ({})\n",
        rounds,
        runs,
        if full { "full" } else { "quick" }
    );
    t.print();

    if sweep {
        // Sweep on cora: the hardest small stand-in, where the knobs
        // actually move the needle (amazon-photo saturates at the label
        // ceiling).
        sensitivity_sweep("cora", rounds.min(20), 19);
    }
}

/// K (moment order) and ε (threshold) sensitivity (DESIGN.md §5).
fn sensitivity_sweep(dataset: &str, rounds: usize, seed: u64) {
    use fedgta::{FedGta, FedGtaConfig};
    use fedgta_bench::partition_benchmark;
    use fedgta_data::load_benchmark;
    use fedgta_fed::client::{build_clients, ClientBuildConfig};
    use fedgta_fed::round::{best_accuracy, SimConfig, Simulation};
    use fedgta_nn::models::ModelConfig;

    println!("\nSensitivity sweep on {dataset} (SGC backbone)\n");
    let run_cfg = |cfg: FedGtaConfig| -> f64 {
        let bench = load_benchmark(dataset, seed).expect("dataset");
        let parts = partition_benchmark(&bench, SplitKind::Louvain, 10, seed);
        let clients = build_clients(
            &bench,
            &parts,
            &ClientBuildConfig {
                model: ModelConfig {
                    kind: ModelKind::Sgc,
                    hidden: 32,
                    layers: 1,
                    k: 3,
                    seed,
                    ..ModelConfig::default()
                },
                lr: 0.01,
                weight_decay: 5e-4,
                halo: false,
            },
        );
        let mut sim = Simulation::new(
            clients,
            Box::new(FedGta::new(cfg)),
            SimConfig {
                rounds,
                local_epochs: 3,
                eval_every: 5,
                seed,
                ..SimConfig::default()
            },
        );
        best_accuracy(&sim.run())
    };

    let mut t = Table::new(&["K (order)", "acc"]);
    for k in [1usize, 2, 3, 5, 8] {
        let acc = run_cfg(FedGtaConfig {
            moment_order: k,
            ..FedGtaConfig::default()
        });
        t.row(vec![format!("{k}"), format!("{:.1}", 100.0 * acc)]);
    }
    t.print();

    let mut t = Table::new(&["epsilon", "acc"]);
    for eps in [0.0f32, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let acc = run_cfg(FedGtaConfig {
            epsilon: eps,
            ..FedGtaConfig::default()
        });
        t.row(vec![format!("{eps}"), format!("{:.1}", 100.0 * acc)]);
    }
    t.print();

    let mut t = Table::new(&["moments", "acc"]);
    for (label, kind) in [
        ("central", fedgta::MomentKind::Central),
        ("raw", fedgta::MomentKind::Raw),
    ] {
        let acc = run_cfg(FedGtaConfig {
            moment_kind: kind,
            ..FedGtaConfig::default()
        });
        t.row(vec![label.to_string(), format!("{:.1}", 100.0 * acc)]);
    }
    t.print();

    let mut t = Table::new(&["similarity", "acc"]);
    for (label, kind) in [
        ("cosine", fedgta::SimilarityKind::Cosine),
        ("inverse-L2", fedgta::SimilarityKind::InverseL2),
    ] {
        let acc = run_cfg(FedGtaConfig {
            similarity: kind,
            ..FedGtaConfig::default()
        });
        t.row(vec![label.to_string(), format!("{:.1}", 100.0 * acc)]);
    }
    t.print();
}
