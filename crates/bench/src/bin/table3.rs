//! Table 3 — transductive performance of FGL Optimization/Model studies.
//!
//! Rows: {Global, FedAvg, FedProx, Scaffold, MOON, FedDC, GCFL+, FedGTA}
//! under GCN and GAMLP local models, plus FedGL/FedSage+ (FedAvg inner),
//! under the Louvain split with 10 clients (500 for ogbn-papers100m in
//! `--full` mode, following the paper).
//!
//! Usage: `cargo run --release -p fedgta-bench --bin table3 [--full]
//!         [--dataset <name>]`

use fedgta_bench::{arg_value, fmt_pm, is_full_run, run_experiment, run_global, ExperimentSpec, Table};
use fedgta_nn::models::ModelKind;

fn main() {
    let full = is_full_run();
    let datasets: Vec<&str> = if let Some(d) = arg_value("--dataset") {
        vec![Box::leak(d.into_boxed_str())]
    } else if full {
        vec![
            "cora", "citeseer", "pubmed", "amazon-photo", "amazon-computer", "coauthor-cs",
            "coauthor-physics", "ogbn-arxiv", "ogbn-products", "ogbn-papers100m",
        ]
    } else {
        vec!["cora", "citeseer", "amazon-photo"]
    };
    let strategies = [
        "FedAvg", "FedProx", "Scaffold", "MOON", "FedDC", "GCFL+", "FedGTA",
    ];
    let models = [ModelKind::Gcn, ModelKind::Gamlp];
    let (rounds, runs) = if full { (100, 5) } else { (25, 2) };

    let mut header = vec!["Model".to_string(), "Optimization".to_string()];
    header.extend(datasets.iter().map(|d| d.to_string()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);

    for model in models {
        // Global (centralized) reference. The paper reports OOM for
        // papers100M with GCN; centralized GCN on the 120k-node sim is
        // likewise skipped in quick mode for wall-clock reasons.
        let mut row = vec![model.name().to_string(), "Global".to_string()];
        for d in &datasets {
            let heavy = matches!(*d, "ogbn-papers100m" | "ogbn-products") && model == ModelKind::Gcn;
            if heavy && !full {
                row.push("skip".into());
                continue;
            }
            let (m, s) = run_global(d, model, 32, rounds, runs.min(2), 7);
            row.push(fmt_pm(m, s));
        }
        t.row(row);

        for strat in strategies {
            let mut row = vec![model.name().to_string(), strat.to_string()];
            for d in &datasets {
                let mut spec = ExperimentSpec::new(d, model, strat);
                spec.rounds = rounds;
                spec.runs = runs;
                spec.eval_every = 5;
                spec.seed = 7;
                if *d == "ogbn-papers100m" {
                    spec.clients = if full { 500 } else { 100 };
                    spec.participation = 0.2;
                }
                let r = run_experiment(&spec);
                row.push(fmt_pm(r.mean, r.std));
                eprintln!("[table3] {} {} {} -> {}", model.name(), strat, d, fmt_pm(r.mean, r.std));
            }
            t.row(row);
        }
    }

    // FGL Model rows (GCN-backed wrappers with FedAvg, as in the paper).
    for (wrapper, model) in [("FedGL+FedAvg", ModelKind::Gcn), ("FedSage++FedAvg", ModelKind::Sage)] {
        let label = wrapper.split('+').next().unwrap();
        let mut row = vec![label.to_string(), "FedAvg".to_string()];
        for d in &datasets {
            // The paper reports OOM for FedGL/FedSage+ on the two largest
            // graphs; we mirror the omission to bound wall-clock.
            if matches!(*d, "ogbn-products" | "ogbn-papers100m") {
                row.push("OOM*".into());
                continue;
            }
            let mut spec = ExperimentSpec::new(d, model, wrapper);
            spec.rounds = rounds.min(40);
            spec.runs = runs.min(2);
            spec.eval_every = 5;
            spec.seed = 7;
            let r = run_experiment(&spec);
            row.push(fmt_pm(r.mean, r.std));
            eprintln!("[table3] {wrapper} {d} -> {}", fmt_pm(r.mean, r.std));
        }
        t.row(row);
    }

    println!(
        "Table 3 — transductive accuracy, Louvain split, {} rounds, {} runs ({})\n",
        rounds,
        runs,
        if full { "full" } else { "quick" }
    );
    t.print();
    println!("\n'OOM*' mirrors the paper's out-of-memory entries for the FGL Model baselines on the largest graphs.");
}
