//! Figure 5 — training efficiency as the number of clients grows.
//!
//! Wall-clock seconds per federated round for each strategy at
//! N ∈ {5, 10, 20, 50} clients. The paper's point: GCFL+'s clustering is
//! superlinear in N, MOON/FedDC pay per-step model-forward overheads,
//! while FedGTA's extra cost is tiny sparse matrix math.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin fig5 [--full]`

use fedgta_bench::{is_full_run, run_experiment, ExperimentSpec, Table};
use fedgta_nn::models::ModelKind;

fn main() {
    let full = is_full_run();
    let dataset = if full { "ogbn-arxiv" } else { "pubmed" };
    let client_counts = if full {
        vec![5usize, 10, 20, 50]
    } else {
        vec![5usize, 10, 20]
    };
    let strategies = ["FedAvg", "FedProx", "Scaffold", "MOON", "FedDC", "GCFL+", "FedGTA"];
    let rounds = if full { 10 } else { 5 };

    println!("Fig. 5 — seconds per round vs number of clients on {dataset} (SGC)\n");
    let mut header = vec!["strategy".to_string()];
    header.extend(client_counts.iter().map(|n| format!("N={n}")));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    for strat in strategies {
        let mut cells = vec![strat.to_string()];
        for &n in &client_counts {
            let mut spec = ExperimentSpec::new(dataset, ModelKind::Sgc, strat);
            spec.clients = n;
            spec.rounds = rounds;
            spec.runs = 1;
            spec.eval_every = 0; // exclude evaluation from timing
            spec.seed = 29;
            let r = run_experiment(&spec);
            let total = r.histories[0].last().unwrap().cumulative_s;
            cells.push(format!("{:.2}", total / rounds as f64));
            eprintln!("[fig5] {strat} N={n}: {:.2}s/round", total / rounds as f64);
        }
        t.row(cells);
    }
    t.print();
}
