//! Figure 4 — convergence curves (test accuracy vs wall-clock seconds)
//! on large benchmark graphs.
//!
//! One series per strategy per dataset; the paper's claim is that FedGTA
//! converges fastest and most stably because its overhead is
//! training-independent sparse matrix math.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin fig4 [--full]`

use fedgta_bench::{is_full_run, render_chart, run_experiment, ExperimentSpec, Series, Table};
use fedgta_nn::models::ModelKind;

fn main() {
    let full = is_full_run();
    let datasets = if full {
        vec!["ogbn-arxiv", "ogbn-products", "flickr", "reddit"]
    } else {
        vec!["ogbn-arxiv", "flickr"]
    };
    let strategies = ["FedAvg", "FedProx", "MOON", "FedDC", "GCFL+", "FedGTA"];
    let rounds = if full { 60 } else { 12 };

    for d in &datasets {
        println!("\nFig. 4 — {d}: accuracy over wall-clock (GAMLP, Louvain 10 clients)\n");
        let mut chart_series: Vec<Series> = Vec::new();
        let mut header = vec!["strategy".to_string()];
        let checkpoints = 6usize;
        header.extend((1..=checkpoints).map(|i| format!("t{i}")));
        header.push("final acc".into());
        header.push("total s".into());
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&hdr);
        for strat in strategies {
            let mut spec = ExperimentSpec::new(d, ModelKind::Gamlp, strat);
            spec.rounds = rounds;
            spec.runs = 1;
            spec.eval_every = 1;
            spec.seed = 23;
            let r = run_experiment(&spec);
            let hist = &r.histories[0];
            let mut cells = vec![strat.to_string()];
            for i in 1..=checkpoints {
                let idx = (i * hist.len()) / checkpoints - 1;
                let rec = &hist[idx];
                cells.push(format!(
                    "{:.1}@{:.0}s",
                    100.0 * rec.test_acc.unwrap_or(0.0),
                    rec.cumulative_s
                ));
            }
            let last = hist.last().unwrap();
            cells.push(format!("{:.1}", 100.0 * last.test_acc.unwrap_or(0.0)));
            cells.push(format!("{:.1}", last.cumulative_s));
            t.row(cells);
            chart_series.push(Series {
                name: strat.to_string(),
                points: hist
                    .iter()
                    .filter_map(|r| r.test_acc.map(|a| (r.cumulative_s, 100.0 * a)))
                    .collect(),
            });
            eprintln!("[fig4] {d} {strat} done");
        }
        t.print();
        println!("\n{}", render_chart(&chart_series, 70, 14));
    }
}
