//! Table 4 — inductive performance under the 10-client Metis split.
//!
//! SIGN and S²GC local models × the seven FGL optimization strategies on
//! the Flickr and Reddit stand-ins. Training graphs exclude val/test
//! nodes entirely (the inductive protocol).
//!
//! Usage: `cargo run --release -p fedgta-bench --bin table4 [--full]`

use fedgta_bench::{fmt_pm, is_full_run, run_experiment, ExperimentSpec, SplitKind, Table};
use fedgta_nn::models::ModelKind;

fn main() {
    let full = is_full_run();
    let datasets = if full {
        vec!["flickr", "reddit"]
    } else {
        vec!["flickr"]
    };
    let strategies = [
        "FedAvg", "FedProx", "Scaffold", "MOON", "FedDC", "GCFL+", "FedGTA",
    ];
    let (rounds, runs) = if full { (100, 5) } else { (20, 2) };

    let mut header = vec!["Model".to_string(), "Optimization".to_string()];
    header.extend(datasets.iter().map(|d| d.to_string()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);

    for model in [ModelKind::Sign, ModelKind::S2gc] {
        for strat in strategies {
            let mut row = vec![model.name().to_string(), strat.to_string()];
            for d in &datasets {
                let mut spec = ExperimentSpec::new(d, model, strat);
                spec.split = SplitKind::Metis;
                spec.rounds = rounds;
                spec.runs = runs;
                spec.eval_every = 5;
                spec.seed = 11;
                let r = run_experiment(&spec);
                row.push(fmt_pm(r.mean, r.std));
                eprintln!("[table4] {} {} {} -> {}", model.name(), strat, d, fmt_pm(r.mean, r.std));
            }
            t.row(row);
        }
    }
    println!(
        "Table 4 — inductive accuracy, Metis 10-client split, {} rounds, {} runs ({})\n",
        rounds,
        runs,
        if full { "full" } else { "quick" }
    );
    t.print();
}
