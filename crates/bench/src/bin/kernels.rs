//! `kernels` — the kernel microbenchmark binary.
//!
//! ```text
//! cargo run --release -p fedgta-bench --bin kernels            # full grid
//! cargo run --release -p fedgta-bench --bin kernels -- --test  # CI smoke
//! cargo run --release -p fedgta-bench --bin kernels -- --out path.json
//! ```
//!
//! Installs the counting allocator so every `_into` kernel's allocation
//! count is measured (the `blocked matmul ≥ 2× naive` and `0 allocs per
//! call` claims in EXPERIMENTS.md come from this binary's output).

use fedgta_bench::alloc::{alloc_count, CountingAlloc};
use fedgta_bench::kernels;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let out = fedgta_bench::arg_value("--out").unwrap_or_else(|| "BENCH_KERNELS.json".into());
    let report = kernels::run(quick, Some(alloc_count));
    print!("{}", kernels::render_table(&report));
    let json = kernels::to_json(&report);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    // In full mode the acceptance bar is part of the binary itself so a
    // regression fails loudly, not silently in a stale JSON file.
    if !quick && report.matmul_speedup_vs_naive < 2.0 {
        eprintln!(
            "error: blocked matmul only {:.2}x naive at {}^3 (need >= 2.0x)",
            report.matmul_speedup_vs_naive, report.anchor_dim
        );
        std::process::exit(1);
    }
}
