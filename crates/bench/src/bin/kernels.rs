//! `kernels` — the kernel microbenchmark binary.
//!
//! ```text
//! cargo run --release -p fedgta-bench --bin kernels            # full grid
//! cargo run --release -p fedgta-bench --bin kernels -- --test  # CI smoke
//! cargo run --release -p fedgta-bench --bin kernels -- --out path.json
//! ```
//!
//! Installs the counting allocator so every `_into` kernel's allocation
//! count is measured (the `blocked matmul ≥ 2× naive` and `0 allocs per
//! call` claims in EXPERIMENTS.md come from this binary's output).

use fedgta_bench::alloc::{alloc_count, CountingAlloc};
use fedgta_bench::kernels;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let out = fedgta_bench::arg_value("--out").unwrap_or_else(|| "BENCH_KERNELS.json".into());
    // Read the baseline *before* overwriting the default output path.
    let baseline_path = fedgta_bench::arg_value("--baseline");
    let baseline_json = baseline_path.as_ref().map(|p| match std::fs::read_to_string(p) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read baseline {p}: {e}");
            std::process::exit(1);
        }
    });
    let report = kernels::run(quick, Some(alloc_count));
    print!("{}", kernels::render_table(&report));
    let json = kernels::to_json(&report);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
    // In full mode the acceptance bars are part of the binary itself so a
    // regression fails loudly, not silently in a stale JSON file.
    if !quick && report.matmul_speedup_vs_naive < 2.0 {
        eprintln!(
            "error: blocked matmul only {:.2}x naive at {}^3 (need >= 2.0x)",
            report.matmul_speedup_vs_naive, report.anchor_dim
        );
        std::process::exit(1);
    }
    // The observability contract: compiled-in hooks at ObsLevel::Off must
    // stay within the 2% budget. Enforced in full mode (quick's single
    // iterations are too noisy for a hard gate, but the number is printed).
    if !quick && report.obs_overhead_pct > 2.0 {
        eprintln!(
            "error: ObsLevel::Off hook overhead {:.2}% exceeds 2% budget",
            report.obs_overhead_pct
        );
        std::process::exit(1);
    }
    // The always-on flight recorder records at span granularity, never
    // per kernel op — arming it must not move the per-op hook off the
    // same budget.
    if !quick && report.recorder_overhead_pct > 2.0 {
        eprintln!(
            "error: hook overhead with flight recorder armed {:.2}% exceeds 2% budget",
            report.recorder_overhead_pct
        );
        std::process::exit(1);
    }
    // `--baseline BENCH_KERNELS.json`: fail if the anchor matmul lost
    // more than 2% GFLOP/s vs the recorded run (enforced in both modes —
    // quick mode re-times the anchor overhead pair with a real budget).
    if let Some(base) = &baseline_json {
        match kernels::check_against_baseline(&report, base, 2.0) {
            Ok(Some(delta)) => println!("baseline check: anchor within budget ({delta:+.2}%)"),
            Ok(None) => println!("baseline check: no comparable anchor cell, skipped"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
