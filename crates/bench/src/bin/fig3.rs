//! Figure 3 — visualization of FedGTA's server-side model aggregation on
//! Amazon-Photo with the 10-client split.
//!
//! Prints (a) each client's label distribution and (b) the aggregation
//! report of the best round: the similarity matrix, each client's
//! aggregation set `Iᵢ`, and the confidence weights (the paper draws
//! these as circles sized by weight).
//!
//! Usage: `cargo run --release -p fedgta-bench --bin fig3 [--full]`

use fedgta::FedGta;
use fedgta_bench::{is_full_run, partition_benchmark, SplitKind, Table};
use fedgta_data::load_benchmark;
use fedgta_fed::client::{build_clients, ClientBuildConfig};
use fedgta_fed::eval::global_test_accuracy;
use fedgta_fed::strategies::{RoundCtx, Strategy};
use fedgta_nn::models::{ModelConfig, ModelKind};

fn main() {
    let full = is_full_run();
    let rounds = if full { 60 } else { 15 };
    let bench = load_benchmark("amazon-photo", 1).expect("amazon-photo");
    let parts = partition_benchmark(&bench, SplitKind::Louvain, 10, 1);

    // (a) label distributions.
    let c = bench.num_classes;
    let mut counts = vec![vec![0usize; c]; 10];
    for (v, &p) in parts.parts.iter().enumerate() {
        counts[p as usize][bench.labels[v] as usize] += 1;
    }
    let mut header = vec!["client".to_string()];
    header.extend((0..c).map(|j| format!("class{j}")));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    for (i, row) in counts.iter().enumerate() {
        let mut cells = vec![format!("{i}")];
        cells.extend(row.iter().map(|&x| format!("{x}")));
        t.row(cells);
    }
    println!("Fig. 3(a) — label distribution per client, Amazon-Photo, Louvain 10 clients\n");
    t.print();

    // (b) run FedGTA; keep the report of the best-accuracy round.
    let mut clients = build_clients(
        &bench,
        &parts,
        &ClientBuildConfig {
            model: ModelConfig {
                kind: ModelKind::Gamlp,
                hidden: 32,
                layers: 2,
                k: 3,
                seed: 1,
                ..ModelConfig::default()
            },
            lr: 0.01,
            weight_decay: 5e-4,
            halo: false,
        },
    );
    let mut strat = FedGta::with_defaults();
    let all: Vec<usize> = (0..clients.len()).collect();
    let mut best = (0f64, None);
    for round in 1..=rounds {
        strat.round(&mut clients, &all, &RoundCtx::plain(3));
        let acc = global_test_accuracy(&mut clients);
        if acc > best.0 {
            best = (acc, strat.last_report().cloned());
        }
        eprintln!("[fig3] round {round}: acc {:.3}", acc);
    }
    let report = best.1.expect("at least one round");
    println!(
        "\nFig. 3(b) — aggregation report of the best round (acc {:.1}%)\n",
        100.0 * best.0
    );
    println!("similarity matrix (cosine over moment sketches):");
    for row in &report.similarity {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:+.2}")).collect();
        println!("  [{}]", cells.join(" "));
    }
    println!("\naggregation sets and confidence weights:");
    for (i, e) in report.entries.iter().enumerate() {
        let members: Vec<String> = e
            .members
            .iter()
            .zip(&e.weights)
            .map(|(m, w)| format!("{m}:{w:.2}"))
            .collect();
        println!("  client {i}: I = {{{}}}", members.join(", "));
    }
}
