//! Extensions study (DESIGN.md §5 / the paper's conclusion): base FedGTA
//! vs the adaptive-ε and propagated-feature-moment extensions, plus the
//! DP-upload privacy wrapper's accuracy cost.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin extensions [--full]`

use fedgta::{FedGta, FedGtaConfig};
use fedgta_bench::{fmt_pm, is_full_run, partition_benchmark, SplitKind, Table};
use fedgta_data::load_benchmark;
use fedgta_fed::client::{build_clients, ClientBuildConfig};
use fedgta_fed::round::{best_accuracy, SimConfig, Simulation};
use fedgta_fed::strategies::{DpUpload, Strategy};
use fedgta_nn::models::{ModelConfig, ModelKind};

fn run_once(dataset: &str, strategy: Box<dyn Strategy>, rounds: usize, seed: u64) -> f64 {
    let bench = load_benchmark(dataset, seed).expect("dataset");
    let parts = partition_benchmark(&bench, SplitKind::Louvain, 10, seed);
    let clients = build_clients(
        &bench,
        &parts,
        &ClientBuildConfig {
            model: ModelConfig {
                kind: ModelKind::Gamlp,
                hidden: 32,
                layers: 2,
                k: 5,
                beta: 0.15,
                seed,
                ..ModelConfig::default()
            },
            lr: 0.02,
            weight_decay: 5e-4,
            halo: false,
        },
    );
    let mut sim = Simulation::new(
        clients,
        strategy,
        SimConfig {
            rounds,
            local_epochs: 3,
            eval_every: 5,
            seed,
            ..SimConfig::default()
        },
    );
    best_accuracy(&sim.run())
}

type VariantRow = (&'static str, Box<dyn Fn() -> Box<dyn Strategy>>);

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let m = xs.iter().sum::<f64>() / n;
    let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    (m, v.sqrt())
}

fn main() {
    let full = is_full_run();
    let datasets = if full {
        vec!["cora", "amazon-photo", "ogbn-arxiv"]
    } else {
        vec!["cora", "amazon-photo"]
    };
    let (rounds, runs) = if full { (60, 3) } else { (25, 2) };
    let variants: Vec<VariantRow> = vec![
        (
            "FedGTA (fixed ε=0.5)",
            Box::new(|| Box::new(FedGta::with_defaults()) as Box<dyn Strategy>),
        ),
        (
            "FedGTA adaptive ε (q=0.8)",
            Box::new(|| Box::new(FedGta::new(FedGtaConfig::adaptive(0.8)))),
        ),
        (
            "FedGTA adaptive ε (q=0.5)",
            Box::new(|| Box::new(FedGta::new(FedGtaConfig::adaptive(0.5)))),
        ),
        (
            "FedGTA + feature moments",
            Box::new(|| Box::new(FedGta::new(FedGtaConfig::with_feature_moments()))),
        ),
        (
            "DP(FedGTA) σ=0.002",
            Box::new(|| {
                Box::new(DpUpload::new(
                    Box::new(FedGta::with_defaults()),
                    5.0,
                    0.002,
                    0,
                ))
            }),
        ),
        (
            "DP(FedGTA) σ=0.01",
            Box::new(|| {
                Box::new(DpUpload::new(
                    Box::new(FedGta::with_defaults()),
                    5.0,
                    0.01,
                    0,
                ))
            }),
        ),
    ];

    let mut header = vec!["variant".to_string()];
    header.extend(datasets.iter().map(|d| d.to_string()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    for (label, make) in &variants {
        let mut row = vec![label.to_string()];
        for d in &datasets {
            let accs: Vec<f64> = (0..runs)
                .map(|r| run_once(d, make(), rounds, 37 + r as u64))
                .collect();
            let (m, s) = mean_std(&accs);
            row.push(fmt_pm(m, s));
            eprintln!("[extensions] {label} {d} -> {}", fmt_pm(m, s));
        }
        t.row(row);
    }
    println!(
        "Extensions study — GAMLP, Louvain 10 clients, {} rounds, {} runs ({})\n",
        rounds,
        runs,
        if full { "full" } else { "quick" }
    );
    t.print();
}
