//! Figure 6 — robustness to partial client participation.
//!
//! Accuracy as the per-round participation ratio shrinks, on the
//! ogbn-products stand-in with a Louvain 50-client split (and the
//! papers100M stand-in with 500 clients in `--full` mode). The paper's
//! claim: representation-comparison methods (MOON, FedDC) degrade with
//! few participants while personalized strategies (FedGTA, GCFL+) stay
//! robust.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin fig6 [--full]`

use fedgta_bench::{is_full_run, run_experiment, ExperimentSpec, Table};
use fedgta_nn::models::ModelKind;

fn main() {
    let full = is_full_run();
    let setups: Vec<(&str, usize)> = if full {
        vec![("ogbn-products", 50), ("ogbn-papers100m", 500)]
    } else {
        vec![("ogbn-arxiv", 20)]
    };
    let ratios = [0.1f64, 0.2, 0.5, 1.0];
    let strategies = ["FedAvg", "MOON", "FedDC", "GCFL+", "FedGTA"];
    let rounds = if full { 50 } else { 15 };

    for (dataset, n_clients) in setups {
        println!("\nFig. 6 — accuracy vs participation ratio, {dataset}, Louvain {n_clients} clients (SGC)\n");
        let mut header = vec!["strategy".to_string()];
        header.extend(ratios.iter().map(|r| format!("{:.0}%", 100.0 * r)));
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&hdr);
        for strat in strategies {
            let mut cells = vec![strat.to_string()];
            for &ratio in &ratios {
                let mut spec = ExperimentSpec::new(dataset, ModelKind::Sgc, strat);
                spec.clients = n_clients;
                spec.participation = ratio;
                spec.rounds = rounds;
                spec.runs = 1;
                spec.eval_every = 5;
                spec.seed = 31;
                let r = run_experiment(&spec);
                cells.push(format!("{:.1}", 100.0 * r.mean));
                eprintln!("[fig6] {dataset} {strat} p={ratio}: {:.3}", r.mean);
            }
            t.row(cells);
        }
        t.print();
    }
}
