//! Figure 1 — the motivating experiment.
//!
//! (a) Per-client × per-class node counts under the Louvain and Metis
//!     10-client splits of Cora (the label Non-iid heatmap);
//! (b) convergence of Global / Local / FedAvg / FedProx / Scaffold /
//!     MOON / FedDC / FedGTA with a GCN backbone on Cora — the curves
//!     showing CV-domain optimizers failing to beat FedAvg while FedGTA
//!     does.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin fig1 [--full]`

use fedgta_bench::{is_full_run, partition_benchmark, render_chart, run_global, Series, SplitKind, Table};
use fedgta_bench::{make_strategy, ExperimentSpec};
use fedgta_data::load_benchmark;
use fedgta_fed::client::{build_clients, ClientBuildConfig};
use fedgta_fed::round::{SimConfig, Simulation};
use fedgta_nn::models::{ModelConfig, ModelKind};

fn label_heatmap(split: SplitKind) {
    let bench = load_benchmark("cora", 0).expect("cora");
    let parts = partition_benchmark(&bench, split, 10, 0);
    let c = bench.num_classes;
    let mut counts = vec![vec![0usize; c]; 10];
    for (v, &p) in parts.parts.iter().enumerate() {
        counts[p as usize][bench.labels[v] as usize] += 1;
    }
    let mut header = vec!["client".to_string()];
    header.extend((0..c).map(|j| format!("class{j}")));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    for (i, row) in counts.iter().enumerate() {
        let mut cells = vec![format!("{i}")];
        cells.extend(row.iter().map(|&x| format!("{x}")));
        t.row(cells);
    }
    println!("\nFig. 1(a) — node counts per client × class, Cora, {} split\n", split.name());
    t.print();
    // Label-skew summary: fraction of each client's nodes in its top class.
    let skews: Vec<f64> = counts
        .iter()
        .map(|row| {
            let total: usize = row.iter().sum();
            let max = row.iter().copied().max().unwrap_or(0);
            if total == 0 {
                0.0
            } else {
                max as f64 / total as f64
            }
        })
        .collect();
    let mean_skew = skews.iter().sum::<f64>() / skews.len() as f64;
    println!(
        "mean top-class share per client: {:.2} (uniform would be {:.2})",
        mean_skew,
        1.0 / c as f64
    );
}

fn convergence(full: bool) {
    let rounds = if full { 100 } else { 30 };
    let strategies = [
        "Local", "FedAvg", "FedProx", "Scaffold", "MOON", "FedDC", "FedGTA",
    ];
    println!("\nFig. 1(b) — test accuracy per round, Cora, GCN, Louvain 10 clients\n");
    let (gmean, _) = run_global("cora", ModelKind::Gcn, 32, rounds, 1, 3);
    println!("Global (centralized) reference: {:.1}", 100.0 * gmean);
    let mut header = vec!["round".to_string()];
    header.extend(strategies.iter().map(|s| s.to_string()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);
    let mut series: Vec<Vec<f64>> = Vec::new();
    for strat in strategies {
        let spec = ExperimentSpec::new("cora", ModelKind::Gcn, strat);
        let bench = load_benchmark("cora", 3).expect("cora");
        let parts = partition_benchmark(&bench, SplitKind::Louvain, 10, 3);
        let clients = build_clients(
            &bench,
            &parts,
            &ClientBuildConfig {
                model: ModelConfig {
                    kind: ModelKind::Gcn,
                    hidden: spec.hidden,
                    layers: 2,
                    seed: 3,
                    ..ModelConfig::default()
                },
                lr: 0.01,
                weight_decay: 5e-4,
                halo: false,
            },
        );
        let mut sim = Simulation::new(
            clients,
            make_strategy(strat),
            SimConfig {
                rounds,
                local_epochs: 3,
                eval_every: 1,
                seed: 3,
                ..SimConfig::default()
            },
        );
        let records = sim.run();
        series.push(records.iter().map(|r| r.test_acc.unwrap_or(0.0)).collect());
        eprintln!("[fig1] {strat} done");
    }
    let step = if full { 10 } else { 5 };
    for r in (step - 1..rounds).step_by(step) {
        let mut cells = vec![format!("{}", r + 1)];
        for s in &series {
            cells.push(format!("{:.1}", 100.0 * s[r]));
        }
        t.row(cells);
    }
    t.print();

    // ASCII rendition of the figure itself.
    let chart_series: Vec<Series> = strategies
        .iter()
        .zip(&series)
        .map(|(name, ys)| Series {
            name: name.to_string(),
            points: ys
                .iter()
                .enumerate()
                .map(|(r, &y)| ((r + 1) as f64, 100.0 * y))
                .collect(),
        })
        .collect();
    println!("\n{}", render_chart(&chart_series, 70, 16));
}

fn main() {
    let full = is_full_run();
    label_heatmap(SplitKind::Louvain);
    label_heatmap(SplitKind::Metis);
    convergence(full);
}
