//! Table 5 — performance gain when FedGTA (and other strategies) drive
//! the FGL Model baselines, Metis 10-client split.
//!
//! FedGL and FedSage+ each wrap {FedAvg, MOON, FedDC, FedGTA} on
//! ogbn-arxiv, Flickr, and Reddit stand-ins.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin table5 [--full]`

use fedgta_bench::{fmt_pm, is_full_run, run_experiment, ExperimentSpec, SplitKind, Table};
use fedgta_nn::models::ModelKind;

fn main() {
    let full = is_full_run();
    let datasets = if full {
        vec!["ogbn-arxiv", "flickr", "reddit"]
    } else {
        vec!["flickr"]
    };
    let inners = ["FedAvg", "MOON", "FedDC", "FedGTA"];
    let (rounds, runs) = if full { (60, 3) } else { (15, 2) };

    let mut header = vec!["Model".to_string(), "Optimization".to_string()];
    header.extend(datasets.iter().map(|d| d.to_string()));
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&hdr);

    for (wrapper, model, label) in [
        ("FedGL+", ModelKind::Gcn, "FedGL"),
        ("FedSage++", ModelKind::Sage, "FedSage+"),
    ] {
        for inner in inners {
            let name = format!("{wrapper}{inner}");
            let mut row = vec![label.to_string(), inner.to_string()];
            for d in &datasets {
                let mut spec = ExperimentSpec::new(d, model, &name);
                spec.split = SplitKind::Metis;
                spec.rounds = rounds;
                spec.runs = runs;
                spec.eval_every = 5;
                spec.halo = true;
                spec.seed = 13;
                let r = run_experiment(&spec);
                row.push(fmt_pm(r.mean, r.std));
                eprintln!("[table5] {name} {d} -> {}", fmt_pm(r.mean, r.std));
            }
            t.row(row);
        }
    }
    println!(
        "Table 5 — FGL Model × optimization strategy, Metis 10-client split, {} rounds, {} runs ({})\n",
        rounds,
        runs,
        if full { "full" } else { "quick" }
    );
    t.print();
}
