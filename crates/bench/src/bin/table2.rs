//! Table 2 — statistical information of the experimental datasets.
//!
//! Prints the generated synthetic stand-ins' statistics next to their
//! specs so the substitution (DESIGN.md §3) is auditable: node/edge/class
//! counts, split sizes, mean degree, and realized edge homophily.
//!
//! Usage: `cargo run --release -p fedgta-bench --bin table2 [--full]`
//! (`--quick`, the default, skips the two largest graphs).

use fedgta_bench::{is_full_run, Table};
use fedgta_data::{load_benchmark, SPECS};
use fedgta_graph::metrics::{degree_stats, edge_homophily};

fn main() {
    let full = is_full_run();
    let skip = ["ogbn-papers100m", "ogbn-products"];
    let mut t = Table::new(&[
        "Dataset", "#Nodes", "#Features", "#Edges", "#Classes", "#Train/Val/Test", "#Task",
        "AvgDeg", "Homophily",
    ]);
    for spec in SPECS {
        if !full && skip.contains(&spec.name) {
            continue;
        }
        let b = load_benchmark(spec.name, 0).expect("catalog dataset");
        let und_edges = b.graph.num_edges() / 2;
        let deg = degree_stats(&b.graph);
        let hom = edge_homophily(&b.graph, &b.labels);
        t.row(vec![
            spec.name.to_string(),
            format!("{}", b.graph.num_nodes()),
            format!("{}", b.features.cols()),
            format!("{und_edges}"),
            format!("{}", b.num_classes),
            format!(
                "{}/{}/{}",
                b.split.train.len(),
                b.split.val.len(),
                b.split.test.len()
            ),
            format!("{:?}", spec.task),
            format!("{:.1}", deg.mean),
            format!("{:.2}", hom),
        ]);
    }
    println!("Table 2 — synthetic stand-in dataset statistics (seed 0)\n");
    t.print();
}
