//! `aggregate` — the server-round microbenchmark binary.
//!
//! ```text
//! cargo run --release -p fedgta-bench --bin aggregate            # full grid
//! cargo run --release -p fedgta-bench --bin aggregate -- --test  # CI smoke
//! cargo run --release -p fedgta-bench --bin aggregate -- --out path.json
//! ```
//!
//! Installs the counting allocator so every cell's warm-call allocation
//! count is measured. Acceptance bars (full mode):
//!
//! - warm-call allocation counts are **plen-independent** at every
//!   `(participants, threads)` — the server performs no parameter-sized
//!   allocations once its buffers are warm;
//! - every cell's 4-thread output is bitwise equal to its 1-thread output
//!   (hard-asserted inside the suite);
//! - 4 threads beat 1 thread by ≥ 2× at the headline shape — enforced
//!   only when the host actually has ≥ 2 hardware threads (a single-core
//!   container runs the parallel helpers inline by design).

use fedgta_bench::aggregate;
use fedgta_bench::alloc::{alloc_count, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let out = fedgta_bench::arg_value("--out").unwrap_or_else(|| "BENCH_AGGREGATE.json".into());
    let report = aggregate::run(quick, Some(alloc_count));
    print!("{}", aggregate::render_table(&report));
    let json = aggregate::to_json(&report);
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    // Bar 1: allocation counts must not scale with the parameter length.
    // Compare every pair of cells that differ only in plen.
    for a in &report.results {
        for b in &report.results {
            if a.participants == b.participants && a.threads == b.threads && a.plen < b.plen {
                let (ca, cb) = (a.allocs_per_call, b.allocs_per_call);
                if ca != cb {
                    eprintln!(
                        "error: warm-call allocations scale with plen at n={} threads={}: \
                         {:?} at plen={} vs {:?} at plen={}",
                        a.participants, a.threads, ca, a.plen, cb, b.plen
                    );
                    std::process::exit(1);
                }
            }
        }
    }

    // Bar 2: parallel speedup at the headline shape — only meaningful on
    // a multi-core host (the 1-core fallback runs everything inline).
    if !quick && report.cores >= 2 && report.speedup_4v1 < 2.0 {
        eprintln!(
            "error: 4-thread aggregate only {:.2}x the 1-thread time at \
             n={} plen={} on a {}-core host (need >= 2.0x)",
            report.speedup_4v1, report.headline.0, report.headline.1, report.cores
        );
        std::process::exit(1);
    }
    if !report.bit_identical {
        // The suite hard-asserts this; belt-and-braces for the artifact.
        eprintln!("error: thread counts disagreed bitwise");
        std::process::exit(1);
    }
}
