//! Table 1 — empirical validation of the complexity analysis.
//!
//! The paper's Table 1 is asymptotic; this binary measures the quantities
//! those bounds predict, on one machine:
//!
//! - **client time** per round as the local graph grows (`O(kmf + nf²)`
//!   for all strategies; FedGTA adds the training-independent
//!   `O(km·kc + n(f²+c))` LP/moment term);
//! - **upload size** per client (`O(f²)` params; FedGTA adds `O(kKc)`);
//! - **server time** per round as N grows (`O(N)` for FedAvg-style
//!   averaging; `O(N + NkKc)` for FedGTA's similarity + personalized
//!   averages; superlinear for GCFL+'s pairwise DTW).
//!
//! Usage: `cargo run --release -p fedgta-bench --bin table1 [--full]`

use fedgta::{label_propagation, local_smoothing_confidence, mixed_moments, FedGtaConfig};
use fedgta::aggregate::{personalized_aggregate, AggregateOptions, ClientUpload};
use fedgta::SimilarityKind;
use fedgta_bench::{is_full_run, Table};
use fedgta_data::{generate_from_spec, DatasetSpec, Task};
use fedgta_nn::Matrix;
use fedgta_obs::timed;

fn spec(n: usize, f: usize, c: usize) -> DatasetSpec {
    DatasetSpec {
        name: "scale",
        nodes: n,
        features: f,
        classes: c,
        avg_degree: 10.0,
        train_frac: 0.5,
        val_frac: 0.2,
        test_frac: 0.3,
        task: Task::Transductive,
        blocks_per_class: 2,
        homophily: 0.8,
        description: "scaling probe",
    }
}

fn main() {
    let full = is_full_run();
    let cfg = FedGtaConfig::default();

    // --- Client-side: FedGTA's extra cost scales with m·k·c, not training.
    println!("Table 1 (client side) — FedGTA metric computation vs subgraph size\n");
    let sizes: Vec<usize> = if full {
        vec![1000, 4000, 16000, 64000]
    } else {
        vec![1000, 4000, 16000]
    };
    let mut t = Table::new(&["n (nodes)", "m (edges)", "LP+moments+conf (ms)", "per-edge (ns)"]);
    for &n in &sizes {
        let bench = generate_from_spec(&spec(n, 32, 8), 0);
        let data = bench.to_dataset();
        let soft = Matrix::from_vec(n, 8, vec![1.0 / 8.0; n * 8]);
        let (_, ns_elapsed) = timed("table1.client_metrics", || {
            let steps = label_propagation(&data.adj_norm, &soft, cfg.k_lp, cfg.alpha);
            let _h = local_smoothing_confidence(steps.last().unwrap(), &data.degrees_hat);
            let _m = mixed_moments(&steps, cfg.moment_order, cfg.moment_kind);
        });
        let ms = ns_elapsed as f64 / 1e6;
        let m_edges = data.adj_norm.num_edges();
        t.row(vec![
            format!("{n}"),
            format!("{m_edges}"),
            format!("{ms:.2}"),
            format!("{:.1}", 1e6 * ms / m_edges as f64),
        ]);
    }
    t.print();

    // --- Upload size: params O(f²) vs FedGTA extras O(kKc).
    println!("\nTable 1 (upload) — bytes per client upload\n");
    let mut t = Table::new(&["component", "floats", "bytes"]);
    let f = 128usize;
    let hidden = 64usize;
    let c = 40usize;
    let params = f * hidden + hidden + hidden * c + c;
    let extras = cfg.k_lp * cfg.moment_order * c + 1;
    t.row(vec!["model weights (all strategies)".into(), format!("{params}"), format!("{}", params * 4)]);
    t.row(vec![
        format!("FedGTA extras (k={}, K={}, c={c})", cfg.k_lp, cfg.moment_order),
        format!("{extras}"),
        format!("{}", extras * 4),
    ]);
    t.print();

    // --- Server side: aggregation time vs N.
    println!("\nTable 1 (server side) — aggregation time vs participants\n");
    let ns: Vec<usize> = if full {
        vec![10, 50, 100, 500]
    } else {
        vec![10, 50, 100]
    };
    let plen = params;
    let sketch_len = cfg.k_lp * cfg.moment_order * c;
    let mut t = Table::new(&["N", "FedAvg-style avg (ms)", "FedGTA personalized (ms)"]);
    for &n in &ns {
        let params_all: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..plen).map(|j| ((i * j) % 97) as f32 / 97.0).collect())
            .collect();
        let sketches: Vec<Vec<f32>> = (0..n)
            .map(|i| (0..sketch_len).map(|j| ((i + j) % 13) as f32 / 13.0).collect())
            .collect();
        // FedAvg-style single average.
        let (_, fedavg_ns) = timed("table1.fedavg_aggregate", || {
            let uploads: Vec<(Vec<f32>, f64)> =
                params_all.iter().map(|p| (p.clone(), 1.0)).collect();
            fedgta_fed::strategies::weighted_average(&uploads)
        });
        let fedavg_ms = fedavg_ns as f64 / 1e6;
        // FedGTA personalized aggregation.
        let ups: Vec<ClientUpload<'_>> = (0..n)
            .map(|i| ClientUpload {
                params: &params_all[i],
                confidence: 1.0 + i as f64,
                moments: &sketches[i],
                n_train: 10,
            })
            .collect();
        let (_, gta_ns) = timed("table1.fedgta_aggregate", || {
            personalized_aggregate(
                &ups,
                &AggregateOptions {
                    epsilon: 0.5,
                    epsilon_quantile: None,
                    similarity: SimilarityKind::Cosine,
                    use_moments: true,
                    use_confidence: true,
                },
            )
        });
        let gta_ms = gta_ns as f64 / 1e6;
        t.row(vec![format!("{n}"), format!("{fedavg_ms:.2}"), format!("{gta_ms:.2}")]);
    }
    t.print();
    println!("\nNote: FedGTA's personalized pass computes N aggregates + an N×N similarity, so it is O(N) heavier than one FedAvg average but stays millisecond-scale at N=500 — matching the paper's O(N + NkKc) bound.");

    // --- Inference efficiency per backbone (paper §4.5 inline table).
    inference_times(full);
}

/// Per-backbone full-inference wall-clock on a 10-client split —
/// the paper's §4.5 inline measurement (SGC fastest … FedSage slowest,
/// decoupled models ahead of coupled ones).
fn inference_times(full: bool) {
    use fedgta_bench::{partition_benchmark, SplitKind};
    use fedgta_data::load_benchmark;
    use fedgta_fed::client::{build_clients, ClientBuildConfig};
    use fedgta_nn::models::{ModelConfig, ModelKind};

    let dataset = if full { "ogbn-arxiv" } else { "pubmed" };
    println!("\nTable 1 (inference) — federation-wide inference seconds on {dataset}, 10-client Louvain split\n");
    let bench = load_benchmark(dataset, 0).expect("dataset");
    let parts = partition_benchmark(&bench, SplitKind::Louvain, 10, 0);
    let mut t = Table::new(&["model", "cold (s)", "warm (s)"]);
    for kind in ModelKind::all() {
        let mut clients = build_clients(
            &bench,
            &parts,
            &ClientBuildConfig {
                model: ModelConfig {
                    kind,
                    hidden: 64,
                    layers: if kind == ModelKind::Sgc { 1 } else { 2 },
                    k: 5,
                    beta: 0.15,
                    seed: 0,
                    ..ModelConfig::default()
                },
                lr: 0.01,
                weight_decay: 0.0,
                halo: false,
            },
        );
        // Cold: includes decoupled models' one-time propagation precompute.
        let (_, cold_ns) = fedgta_obs::timed("table1.inference_cold", || {
            for c in clients.iter_mut() {
                let _ = c.model.predict(&c.data);
            }
        });
        let cold = cold_ns as f64 / 1e9;
        // Warm: precomputed features cached (the deployment steady state).
        let (_, warm_ns) = fedgta_obs::timed("table1.inference_warm", || {
            for c in clients.iter_mut() {
                let _ = c.model.predict(&c.data);
            }
        });
        let warm = warm_ns as f64 / 1e9;
        t.row(vec![
            kind.name().to_string(),
            format!("{cold:.3}"),
            format!("{warm:.3}"),
        ]);
    }
    t.print();
}
