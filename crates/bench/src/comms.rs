//! Upload-codec communication benchmark: the bytes-vs-accuracy Pareto
//! sweep behind `BENCH_COMMS.json` (`fedgta-cli bench comms`).
//!
//! Each cell arms one communication configuration — an upload codec
//! chain, optionally error feedback, a download (broadcast) codec, or a
//! moment-sketch codec for FedGTA's auxiliary tensors — on one strategy
//! over a 10-client federation and runs the full transport round
//! (fault-free, so every upload is metered on the real wire path). Per
//! cell the sweep records:
//!
//! - **wire_reduction** — `Σ bytes_raw / Σ bytes_encoded`, the honest
//!   end-to-end upload-byte ratio. The coded frame still carries the
//!   scalar fields (loss, confidence, `n_train`) and per-tensor codec
//!   metadata, so pure `quant-i8` lands just under the 4.0× value ratio
//!   (~3.98× at cora scale); chains with top-k sparsification clear it
//!   by a wide margin.
//! - **down_reduction** — the same ratio for the broadcast leg when a
//!   download codec is armed (`null` otherwise — plain broadcasts never
//!   become wire bytes).
//! - **value_compression** — the analytic bits-per-value ratio of the
//!   quantizer alone (32/8 = 4.0 for `quant-i8`, 32/16 = 2.0 for
//!   `quant-f16`), `null` for chains whose ratio depends on tensor
//!   shape (top-k).
//! - **best_acc / acc_delta_pp** — best global test accuracy and its
//!   delta (percentage points) against the plain-upload baseline of the
//!   same strategy.
//!
//! Every cell is run at 1 and 4 worker threads and hard-asserts
//! bit-identical records; lossless cells additionally assert their
//! loss/accuracy trajectories are bitwise equal to the plain baseline,
//! and error-feedback cells assert they beat their bare-codec twin's
//! accuracy (the whole point of carrying the residual).

use crate::format::{json_f64, json_fixed, json_str, Table};
use crate::runner::{make_strategy, partition_benchmark, SplitKind};
use fedgta_data::load_benchmark;
use fedgta_fed::client::{build_clients, ClientBuildConfig};
use fedgta_fed::round::{best_accuracy, CommsConfig, RoundRecord, SimConfig, Simulation};
use fedgta_fed::CodecSpec;
use fedgta_nn::models::{ModelConfig, ModelKind};

/// One benched cell: a `(strategy, comms configuration)` pair.
#[derive(Debug, Clone)]
pub struct CommsResult {
    /// Strategy name.
    pub strategy: String,
    /// Canonical cell label: the upload chain, then `+ef`, ` down=…`,
    /// ` sketch=…` as armed (`"none"` = plain uploads).
    pub codec: String,
    /// Whether the whole configuration is lossless end to end.
    pub lossless: bool,
    /// Error feedback armed on the upload leg.
    pub error_feedback: bool,
    /// Total raw upload bytes across all rounds (plain encoding of the
    /// same payloads, metered on the wire path).
    pub bytes_raw: u64,
    /// Total encoded upload bytes actually framed.
    pub bytes_encoded: u64,
    /// `bytes_raw / bytes_encoded`.
    pub wire_reduction: f64,
    /// Total raw broadcast bytes (0 unless a download codec is armed).
    pub bytes_down_raw: u64,
    /// Total encoded broadcast bytes actually framed.
    pub bytes_down_encoded: u64,
    /// `bytes_down_raw / bytes_down_encoded` (`None` with no download
    /// codec).
    pub down_reduction: Option<f64>,
    /// Analytic bits-per-value ratio of the quantizer (`None` when the
    /// chain's ratio is shape-dependent, e.g. top-k).
    pub value_compression: Option<f64>,
    /// Best global test accuracy over the run.
    pub best_acc: f64,
    /// `100·(best_acc − baseline_best_acc)` vs the same strategy's
    /// plain-upload cell.
    pub acc_delta_pp: f64,
    /// 1-thread vs 4-thread records bitwise equal (hard-asserted).
    pub bit_identical_threads: bool,
    /// For lossless configurations: trajectory bitwise equal to the
    /// plain cell (`None` for lossy cells, where equality is not a
    /// contract).
    pub matches_plain: Option<bool>,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct CommsReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Dataset the sweep ran on.
    pub dataset: String,
    /// Communication rounds per cell.
    pub rounds: usize,
    /// All cells, grouped by strategy in sweep order.
    pub results: Vec<CommsResult>,
}

/// The codec chains the sweep covers (plain baseline first).
pub const CODECS: &[&str] = &[
    "none",
    "identity",
    "quant-f16",
    "quant-i8",
    "topk=64",
    "topk=64+quant-i8",
];

/// One sweep cell's communication configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Upload codec chain (`None` = plain uploads).
    pub codec: Option<&'static str>,
    /// Error feedback on the upload leg.
    pub ef: bool,
    /// Download (broadcast) codec chain.
    pub down: Option<&'static str>,
    /// Sketch codec chain for auxiliary payload tensors.
    pub sketch: Option<&'static str>,
}

impl Cell {
    const fn plain(codec: Option<&'static str>) -> Self {
        Self { codec, ef: false, down: None, sketch: None }
    }

    /// The bare-upload twin of an error-feedback cell.
    const fn without_ef(self) -> Self {
        Self { ef: false, ..self }
    }

    fn label(&self) -> String {
        let mut s = self
            .codec
            .map_or_else(|| "none".to_string(), spec_name);
        if self.ef {
            s.push_str("+ef");
        }
        if let Some(d) = self.down {
            s.push_str(&format!(" down={}", spec_name(d)));
        }
        if let Some(k) = self.sketch {
            s.push_str(&format!(" aux={}", spec_name(k)));
        }
        s
    }

    fn lossless(&self) -> bool {
        let chain_lossless = |c: Option<&str>| {
            c.is_none_or(|c| CodecSpec::parse(c).expect("valid codec spec").is_lossless())
        };
        !self.ef
            && chain_lossless(self.codec)
            && chain_lossless(self.down)
            && chain_lossless(self.sketch)
    }
}

fn spec_name(chain: &str) -> String {
    CodecSpec::parse(chain).expect("valid codec spec").name()
}

/// Overrides for the sweep's dataset/size knobs (CLI pass-through;
/// `None` keeps the mode's default).
#[derive(Debug, Clone, Default)]
pub struct Overrides {
    /// Dataset name (`cora` default; `citeseer`/`pubmed` also ship).
    pub dataset: Option<String>,
    /// Communication rounds per cell.
    pub rounds: Option<usize>,
    /// Federation size.
    pub clients: Option<usize>,
}

struct Grid {
    strategies: Vec<&'static str>,
    cells: Vec<Cell>,
    dataset: String,
    rounds: usize,
    epochs: usize,
    clients: usize,
    fedgta_extra: Vec<Cell>,
}

impl Grid {
    fn new(quick: bool, over: &Overrides) -> Self {
        let mut g = if quick {
            Self {
                strategies: vec!["FedGTA"],
                cells: vec![
                    Cell::plain(None),
                    Cell::plain(Some("quant-i8")),
                    Cell::plain(Some("topk=64")),
                    Cell::plain(Some("topk=64+quant-i8")),
                    Cell { ef: true, ..Cell::plain(Some("topk=64+quant-i8")) },
                ],
                dataset: "cora".to_string(),
                rounds: 3,
                epochs: 1,
                clients: 6,
                fedgta_extra: Vec::new(),
            }
        } else {
            let mut cells: Vec<Cell> = CODECS.iter().map(|c| {
                Cell::plain((*c != "none").then_some(*c))
            }).collect();
            cells.push(Cell { ef: true, ..Cell::plain(Some("topk=64")) });
            cells.push(Cell { ef: true, ..Cell::plain(Some("topk=64+quant-i8")) });
            Self {
                strategies: vec!["FedAvg", "FedGTA"],
                cells,
                dataset: "cora".to_string(),
                rounds: 20,
                epochs: 2,
                clients: 10,
                // FedGTA-only rows: the download leg (FedGTA broadcasts
                // per-client personalized models — the interesting case)
                // and the moment-sketch codec (only FedGTA uploads
                // auxiliary tensors).
                fedgta_extra: vec![
                    Cell { down: Some("quant-i8"), ..Cell::plain(None) },
                    Cell { sketch: Some("sketch=7"), ..Cell::plain(Some("quant-i8")) },
                    // The headline Pareto point: sparsified+quantized
                    // parameters with error feedback, moments routed
                    // through the sketch codec so similarity weights
                    // stay faithful.
                    Cell {
                        ef: true,
                        sketch: Some("sketch=7"),
                        ..Cell::plain(Some("topk=64+quant-i8"))
                    },
                ],
            }
        };
        if let Some(d) = &over.dataset {
            g.dataset = d.clone();
        }
        if let Some(r) = over.rounds {
            g.rounds = r.max(1);
        }
        if let Some(c) = over.clients {
            g.clients = c.max(2);
        }
        g
    }
}

/// Runs one `(strategy, cell, threads)` simulation over the transport
/// path and returns its records. Fault-free `CommsConfig`, so every
/// scheduled upload is delivered and metered.
fn run_sim(grid: &Grid, strategy: &str, cell: Cell, threads: usize) -> Vec<RoundRecord> {
    let seed = 7u64;
    let bench = load_benchmark(&grid.dataset, seed).expect("known dataset");
    let parts = partition_benchmark(&bench, SplitKind::Louvain, grid.clients, seed);
    let clients = build_clients(
        &bench,
        &parts,
        &ClientBuildConfig {
            model: ModelConfig {
                kind: ModelKind::Sgc,
                hidden: 32,
                layers: 1,
                k: 5,
                beta: 0.15,
                batch_size: 256,
                seed,
                ..ModelConfig::default()
            },
            lr: 0.02,
            weight_decay: 5e-4,
            halo: false,
        },
    );
    let parse = |c: Option<&str>| c.map(|c| CodecSpec::parse(c).expect("valid codec spec"));
    let mut sim = Simulation::new(
        clients,
        make_strategy(strategy),
        SimConfig {
            rounds: grid.rounds,
            local_epochs: grid.epochs,
            participation: 1.0,
            eval_every: 1,
            seed,
            threads,
        },
    )
    .with_comms(CommsConfig {
        codec: parse(cell.codec),
        codec_down: parse(cell.down),
        codec_sketch: parse(cell.sketch),
        error_feedback: cell.ef,
        ..CommsConfig::default()
    });
    sim.run()
}

/// Bitwise equality of the fields the determinism contract covers
/// (loss/accuracy bit patterns, participation, every byte counter —
/// both wire legs).
fn records_identical(a: &[RoundRecord], b: &[RoundRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.round == y.round
                && x.mean_loss.to_bits() == y.mean_loss.to_bits()
                && x.test_acc.map(f64::to_bits) == y.test_acc.map(f64::to_bits)
                && x.bytes_uploaded == y.bytes_uploaded
                && x.bytes_uploaded_raw == y.bytes_uploaded_raw
                && x.bytes_uploaded_encoded == y.bytes_uploaded_encoded
                && x.bytes_downloaded_raw == y.bytes_downloaded_raw
                && x.bytes_downloaded_encoded == y.bytes_downloaded_encoded
                && x.participants_completed == y.participants_completed
                && x.participants_dropped == y.participants_dropped
        })
}

/// Learning-trajectory equality only (loss/accuracy bits) — what a
/// lossless configuration owes the plain baseline.
fn trajectories_identical(a: &[RoundRecord], b: &[RoundRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.mean_loss.to_bits() == y.mean_loss.to_bits()
                && x.test_acc.map(f64::to_bits) == y.test_acc.map(f64::to_bits)
        })
}

/// Analytic bits-per-value ratio when the chain is a bare quantizer.
fn value_compression(cell: &Cell) -> Option<f64> {
    if cell.ef || cell.down.is_some() || cell.sketch.is_some() {
        return None;
    }
    match cell.codec {
        None | Some("identity") => Some(1.0),
        Some("quant-f16") => Some(2.0),
        Some("quant-i8") => Some(4.0),
        _ => None,
    }
}

/// Runs the sweep with the default grid. `quick` is the CI smoke grid.
pub fn run(quick: bool) -> CommsReport {
    run_with(quick, &Overrides::default())
}

/// Runs the sweep with `--dataset/--rounds/--clients` overrides applied.
pub fn run_with(quick: bool, over: &Overrides) -> CommsReport {
    let grid = Grid::new(quick, over);
    let mut results = Vec::new();
    for strategy in &grid.strategies {
        let mut baseline: Option<(Vec<RoundRecord>, f64)> = None;
        // Accuracy of each bare cell, so an error-feedback twin can be
        // held to "beats the bare codec".
        let mut bare_acc: Vec<(Cell, f64)> = Vec::new();
        let mut cells = grid.cells.clone();
        if *strategy == "FedGTA" {
            cells.extend(grid.fedgta_extra.iter().copied());
        }
        for cell in cells {
            let label = cell.label();
            let lossless = cell.lossless();
            let r1 = run_sim(&grid, strategy, cell, 1);
            let r4 = run_sim(&grid, strategy, cell, 4);
            let bit_identical_threads = records_identical(&r1, &r4);
            assert!(
                bit_identical_threads,
                "{strategy} × {label}: 1-thread and 4-thread records differ bitwise"
            );
            let best = best_accuracy(&r1);
            let matches_plain = match (&baseline, lossless) {
                (Some((base, _)), true) => {
                    let same = trajectories_identical(&r1, base);
                    assert!(
                        same,
                        "{strategy} × {label}: lossless configuration diverged from plain uploads"
                    );
                    Some(same)
                }
                _ => None,
            };
            if cell.ef {
                // The point of the residual: error feedback must recover
                // accuracy its bare codec threw away. A contract of the
                // committed grid sizes only — at override-shrunk round
                // counts the residual may not have had time to bite, so
                // warn instead of aborting a what-if sweep.
                if let Some((_, bare)) =
                    bare_acc.iter().find(|(c, _)| *c == cell.without_ef())
                {
                    let default_size = over.rounds.is_none() && over.clients.is_none();
                    if default_size {
                        assert!(
                            best > *bare,
                            "{strategy} × {label}: error feedback ({best:.4}) \
                             does not beat the bare codec ({bare:.4})"
                        );
                    } else if best <= *bare {
                        eprintln!(
                            "warning: {strategy} × {label}: error feedback ({best:.4}) \
                             does not beat the bare codec ({bare:.4}) at overridden sweep size"
                        );
                    }
                }
            } else {
                bare_acc.push((cell, best));
            }
            let acc_delta_pp = match &baseline {
                Some((_, base_best)) => 100.0 * (best - base_best),
                None => 0.0,
            };
            let bytes_raw: u64 = r1.iter().map(|r| r.bytes_uploaded_raw as u64).sum();
            let bytes_encoded: u64 = r1.iter().map(|r| r.bytes_uploaded_encoded as u64).sum();
            let bytes_down_raw: u64 = r1.iter().map(|r| r.bytes_downloaded_raw as u64).sum();
            let bytes_down_encoded: u64 =
                r1.iter().map(|r| r.bytes_downloaded_encoded as u64).sum();
            results.push(CommsResult {
                strategy: strategy.to_string(),
                codec: label,
                lossless,
                error_feedback: cell.ef,
                bytes_raw,
                bytes_encoded,
                wire_reduction: bytes_raw as f64 / bytes_encoded as f64,
                bytes_down_raw,
                bytes_down_encoded,
                down_reduction: (bytes_down_encoded > 0)
                    .then(|| bytes_down_raw as f64 / bytes_down_encoded as f64),
                value_compression: value_compression(&cell),
                best_acc: best,
                acc_delta_pp,
                bit_identical_threads,
                matches_plain,
            });
            if baseline.is_none() {
                baseline = Some((r1, best));
            }
        }
    }
    CommsReport {
        mode: if quick { "quick" } else { "full" },
        dataset: grid.dataset,
        rounds: grid.rounds,
        results,
    }
}

/// Hand-rolled JSON via the [`crate::format`] helpers (escaped strings,
/// NaN/Inf as `null`).
pub fn to_json(r: &CommsReport) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"mode\": {},\n", json_str(r.mode)));
    s.push_str(&format!("  \"dataset\": {},\n", json_str(&r.dataset)));
    s.push_str(&format!("  \"rounds\": {},\n", r.rounds));
    s.push_str("  \"results\": [\n");
    for (i, c) in r.results.iter().enumerate() {
        let vc = match c.value_compression {
            Some(v) => json_fixed(v, 1),
            None => "null".to_string(),
        };
        let dr = match c.down_reduction {
            Some(v) => json_fixed(v, 3),
            None => "null".to_string(),
        };
        let mp = match c.matches_plain {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"strategy\": {}, \"codec\": {}, \"lossless\": {}, \
             \"error_feedback\": {}, \
             \"bytes_raw\": {}, \"bytes_encoded\": {}, \"wire_reduction\": {}, \
             \"bytes_down_raw\": {}, \"bytes_down_encoded\": {}, \"down_reduction\": {}, \
             \"value_compression\": {}, \"best_acc\": {}, \"acc_delta_pp\": {}, \
             \"bit_identical_threads\": {}, \"matches_plain\": {}}}{}\n",
            json_str(&c.strategy),
            json_str(&c.codec),
            c.lossless,
            c.error_feedback,
            c.bytes_raw,
            c.bytes_encoded,
            json_fixed(c.wire_reduction, 3),
            c.bytes_down_raw,
            c.bytes_down_encoded,
            dr,
            vc,
            json_f64(c.best_acc),
            json_fixed(c.acc_delta_pp, 2),
            c.bit_identical_threads,
            mp,
            if i + 1 < r.results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Plain-text Pareto table for terminal output.
pub fn render_table(r: &CommsReport) -> String {
    let mut t = Table::new(&[
        "strategy",
        "codec",
        "raw KiB",
        "enc KiB",
        "wire x",
        "down x",
        "value x",
        "best acc",
        "Δpp",
        "1t=4t",
    ]);
    for c in &r.results {
        t.row(vec![
            c.strategy.clone(),
            c.codec.clone(),
            format!("{:.1}", c.bytes_raw as f64 / 1024.0),
            format!("{:.1}", c.bytes_encoded as f64 / 1024.0),
            format!("{:.2}", c.wire_reduction),
            c.down_reduction
                .map_or_else(|| "-".to_string(), |v| format!("{v:.2}")),
            c.value_compression
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            format!("{:.3}", c.best_acc),
            format!("{:+.2}", c.acc_delta_pp),
            if c.bit_identical_threads { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "comms bench ({} mode, {} rounds on {})\n{}",
        r.mode,
        r.rounds,
        r.dataset,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_meters_compression_and_stays_deterministic() {
        let r = run(true);
        assert_eq!(r.results.len(), 5);
        let plain = &r.results[0];
        assert_eq!(plain.codec, "none");
        // Plain uploads: encoded path IS the raw path.
        assert_eq!(plain.bytes_raw, plain.bytes_encoded);
        let i8c = &r.results[1];
        assert_eq!(i8c.codec, "quant-i8");
        assert!(
            i8c.wire_reduction > 3.5,
            "quant-i8 wire reduction {}",
            i8c.wire_reduction
        );
        let chain = &r.results[3];
        assert!(
            chain.wire_reduction > i8c.wire_reduction,
            "topk chain should beat bare quant-i8"
        );
        // The EF twin keeps the chain's wire reduction (residual folding
        // changes the values, not the framing) and run() hard-asserted
        // it beats the bare chain's accuracy.
        let ef = &r.results[4];
        assert!(ef.error_feedback);
        assert_eq!(ef.codec, "topk=64+quant-i8+ef");
        assert!(
            ef.wire_reduction > i8c.wire_reduction,
            "EF chain wire reduction {}",
            ef.wire_reduction
        );
        assert!(ef.best_acc > chain.best_acc, "EF must beat bare top-k");
        assert!(r.results.iter().all(|c| c.bit_identical_threads));
        let json = to_json(&r);
        assert!(json.contains("\"wire_reduction\""));
        assert!(json.contains("\"down_reduction\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = render_table(&r);
        assert!(table.contains("quant-i8"));
    }
}
