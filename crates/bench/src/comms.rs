//! Upload-codec communication benchmark: the bytes-vs-accuracy Pareto
//! sweep behind `BENCH_COMMS.json` (`fedgta-cli bench comms`).
//!
//! Each cell arms one codec chain on one strategy over the cora/SGC
//! 10-client federation and runs the full transport round (fault-free,
//! so every upload is metered on the real wire path). Per cell the
//! sweep records:
//!
//! - **wire_reduction** — `Σ bytes_raw / Σ bytes_encoded`, the honest
//!   end-to-end upload-byte ratio. The coded frame still carries the
//!   scalar fields (loss, confidence, `n_train`) and per-tensor codec
//!   metadata, so pure `quant-i8` lands just under the 4.0× value ratio
//!   (~3.98× at cora scale); chains with top-k sparsification clear it
//!   by a wide margin.
//! - **value_compression** — the analytic bits-per-value ratio of the
//!   quantizer alone (32/8 = 4.0 for `quant-i8`, 32/16 = 2.0 for
//!   `quant-f16`), `null` for chains whose ratio depends on tensor
//!   shape (top-k).
//! - **best_acc / acc_delta_pp** — best global test accuracy and its
//!   delta (percentage points) against the plain-upload baseline of the
//!   same strategy.
//!
//! Every cell is run at 1 and 4 worker threads and hard-asserts
//! bit-identical records; lossless cells additionally assert their
//! loss/accuracy trajectories are bitwise equal to the plain baseline.

use crate::format::{json_f64, json_fixed, json_str, Table};
use crate::runner::{make_strategy, partition_benchmark, SplitKind};
use fedgta_data::load_benchmark;
use fedgta_fed::client::{build_clients, ClientBuildConfig};
use fedgta_fed::round::{best_accuracy, CommsConfig, RoundRecord, SimConfig, Simulation};
use fedgta_fed::CodecSpec;
use fedgta_nn::models::{ModelConfig, ModelKind};

/// One benched cell: a `(strategy, codec)` pair.
#[derive(Debug, Clone)]
pub struct CommsResult {
    /// Strategy name.
    pub strategy: String,
    /// Canonical codec chain name (`"none"` = plain uploads).
    pub codec: String,
    /// Whether the chain is lossless (plain and identity chains).
    pub lossless: bool,
    /// Total raw upload bytes across all rounds (plain encoding of the
    /// same payloads, metered on the wire path).
    pub bytes_raw: u64,
    /// Total encoded upload bytes actually framed.
    pub bytes_encoded: u64,
    /// `bytes_raw / bytes_encoded`.
    pub wire_reduction: f64,
    /// Analytic bits-per-value ratio of the quantizer (`None` when the
    /// chain's ratio is shape-dependent, e.g. top-k).
    pub value_compression: Option<f64>,
    /// Best global test accuracy over the run.
    pub best_acc: f64,
    /// `100·(best_acc − baseline_best_acc)` vs the same strategy's
    /// plain-upload cell.
    pub acc_delta_pp: f64,
    /// 1-thread vs 4-thread records bitwise equal (hard-asserted).
    pub bit_identical_threads: bool,
    /// For lossless chains: trajectory bitwise equal to the plain cell
    /// (`None` for lossy chains, where equality is not a contract).
    pub matches_plain: Option<bool>,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct CommsReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// Dataset the sweep ran on.
    pub dataset: &'static str,
    /// Communication rounds per cell.
    pub rounds: usize,
    /// All cells, grouped by strategy in sweep order.
    pub results: Vec<CommsResult>,
}

/// The codec chains the sweep covers (plain baseline first).
pub const CODECS: &[&str] = &[
    "none",
    "identity",
    "quant-f16",
    "quant-i8",
    "topk=64",
    "topk=64+quant-i8",
];

struct Grid {
    strategies: Vec<&'static str>,
    codecs: Vec<&'static str>,
    rounds: usize,
    epochs: usize,
    clients: usize,
}

impl Grid {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                strategies: vec!["FedGTA"],
                codecs: vec!["none", "quant-i8", "topk=64+quant-i8"],
                rounds: 3,
                epochs: 1,
                clients: 6,
            }
        } else {
            Self {
                strategies: vec!["FedAvg", "FedGTA"],
                codecs: CODECS.to_vec(),
                rounds: 20,
                epochs: 2,
                clients: 10,
            }
        }
    }
}

/// Runs one `(strategy, codec, threads)` simulation over the transport
/// path and returns its records. Fault-free `CommsConfig`, so every
/// scheduled upload is delivered and metered.
fn run_sim(grid: &Grid, strategy: &str, codec: Option<&str>, threads: usize) -> Vec<RoundRecord> {
    let seed = 7u64;
    let bench = load_benchmark("cora", seed).expect("known dataset");
    let parts = partition_benchmark(&bench, SplitKind::Louvain, grid.clients, seed);
    let clients = build_clients(
        &bench,
        &parts,
        &ClientBuildConfig {
            model: ModelConfig {
                kind: ModelKind::Sgc,
                hidden: 32,
                layers: 1,
                k: 5,
                beta: 0.15,
                batch_size: 256,
                seed,
                ..ModelConfig::default()
            },
            lr: 0.02,
            weight_decay: 5e-4,
            halo: false,
        },
    );
    let codec = codec.map(|c| CodecSpec::parse(c).expect("valid codec spec"));
    let mut sim = Simulation::new(
        clients,
        make_strategy(strategy),
        SimConfig {
            rounds: grid.rounds,
            local_epochs: grid.epochs,
            participation: 1.0,
            eval_every: 1,
            seed,
            threads,
        },
    )
    .with_comms(CommsConfig {
        codec,
        ..CommsConfig::default()
    });
    sim.run()
}

/// Bitwise equality of the fields the determinism contract covers
/// (loss/accuracy bit patterns, participation, every byte counter).
fn records_identical(a: &[RoundRecord], b: &[RoundRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.round == y.round
                && x.mean_loss.to_bits() == y.mean_loss.to_bits()
                && x.test_acc.map(f64::to_bits) == y.test_acc.map(f64::to_bits)
                && x.bytes_uploaded == y.bytes_uploaded
                && x.bytes_uploaded_raw == y.bytes_uploaded_raw
                && x.bytes_uploaded_encoded == y.bytes_uploaded_encoded
                && x.participants_completed == y.participants_completed
                && x.participants_dropped == y.participants_dropped
        })
}

/// Learning-trajectory equality only (loss/accuracy bits) — what a
/// lossless codec owes the plain baseline. Byte counters legitimately
/// differ: the coded frame carries the codec header and per-tensor
/// metadata even when the values are untouched.
fn trajectories_identical(a: &[RoundRecord], b: &[RoundRecord]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.mean_loss.to_bits() == y.mean_loss.to_bits()
                && x.test_acc.map(f64::to_bits) == y.test_acc.map(f64::to_bits)
        })
}

/// Analytic bits-per-value ratio when the chain is a bare quantizer.
fn value_compression(codec: &str) -> Option<f64> {
    match codec {
        "none" | "identity" => Some(1.0),
        "quant-f16" => Some(2.0),
        "quant-i8" => Some(4.0),
        _ => None,
    }
}

/// Runs the sweep. `quick` is the CI smoke grid.
pub fn run(quick: bool) -> CommsReport {
    let grid = Grid::new(quick);
    let mut results = Vec::new();
    for strategy in &grid.strategies {
        let mut baseline: Option<(Vec<RoundRecord>, f64)> = None;
        for codec_name in &grid.codecs {
            let codec = (*codec_name != "none").then_some(*codec_name);
            let spec = codec.map(|c| CodecSpec::parse(c).expect("valid codec spec"));
            let lossless = spec.as_ref().is_none_or(CodecSpec::is_lossless);
            let r1 = run_sim(&grid, strategy, codec, 1);
            let r4 = run_sim(&grid, strategy, codec, 4);
            let bit_identical_threads = records_identical(&r1, &r4);
            assert!(
                bit_identical_threads,
                "{strategy} × {codec_name}: 1-thread and 4-thread records differ bitwise"
            );
            let best = best_accuracy(&r1);
            let matches_plain = match (&baseline, lossless) {
                (Some((base, _)), true) => {
                    let same = trajectories_identical(&r1, base);
                    assert!(
                        same,
                        "{strategy} × {codec_name}: lossless codec diverged from plain uploads"
                    );
                    Some(same)
                }
                _ => None,
            };
            let acc_delta_pp = match &baseline {
                Some((_, base_best)) => 100.0 * (best - base_best),
                None => 0.0,
            };
            let bytes_raw: u64 = r1.iter().map(|r| r.bytes_uploaded_raw as u64).sum();
            let bytes_encoded: u64 = r1.iter().map(|r| r.bytes_uploaded_encoded as u64).sum();
            results.push(CommsResult {
                strategy: strategy.to_string(),
                codec: spec.as_ref().map_or_else(|| "none".to_string(), CodecSpec::name),
                lossless,
                bytes_raw,
                bytes_encoded,
                wire_reduction: bytes_raw as f64 / bytes_encoded as f64,
                value_compression: value_compression(codec_name),
                best_acc: best,
                acc_delta_pp,
                bit_identical_threads,
                matches_plain,
            });
            if baseline.is_none() {
                baseline = Some((r1, best));
            }
        }
    }
    CommsReport {
        mode: if quick { "quick" } else { "full" },
        dataset: "cora",
        rounds: grid.rounds,
        results,
    }
}

/// Hand-rolled JSON via the [`crate::format`] helpers (escaped strings,
/// NaN/Inf as `null`).
pub fn to_json(r: &CommsReport) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"mode\": {},\n", json_str(r.mode)));
    s.push_str(&format!("  \"dataset\": {},\n", json_str(r.dataset)));
    s.push_str(&format!("  \"rounds\": {},\n", r.rounds));
    s.push_str("  \"results\": [\n");
    for (i, c) in r.results.iter().enumerate() {
        let vc = match c.value_compression {
            Some(v) => json_fixed(v, 1),
            None => "null".to_string(),
        };
        let mp = match c.matches_plain {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"strategy\": {}, \"codec\": {}, \"lossless\": {}, \
             \"bytes_raw\": {}, \"bytes_encoded\": {}, \"wire_reduction\": {}, \
             \"value_compression\": {}, \"best_acc\": {}, \"acc_delta_pp\": {}, \
             \"bit_identical_threads\": {}, \"matches_plain\": {}}}{}\n",
            json_str(&c.strategy),
            json_str(&c.codec),
            c.lossless,
            c.bytes_raw,
            c.bytes_encoded,
            json_fixed(c.wire_reduction, 3),
            vc,
            json_f64(c.best_acc),
            json_fixed(c.acc_delta_pp, 2),
            c.bit_identical_threads,
            mp,
            if i + 1 < r.results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Plain-text Pareto table for terminal output.
pub fn render_table(r: &CommsReport) -> String {
    let mut t = Table::new(&[
        "strategy",
        "codec",
        "raw KiB",
        "enc KiB",
        "wire x",
        "value x",
        "best acc",
        "Δpp",
        "1t=4t",
    ]);
    for c in &r.results {
        t.row(vec![
            c.strategy.clone(),
            c.codec.clone(),
            format!("{:.1}", c.bytes_raw as f64 / 1024.0),
            format!("{:.1}", c.bytes_encoded as f64 / 1024.0),
            format!("{:.2}", c.wire_reduction),
            c.value_compression
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            format!("{:.3}", c.best_acc),
            format!("{:+.2}", c.acc_delta_pp),
            if c.bit_identical_threads { "yes" } else { "NO" }.to_string(),
        ]);
    }
    format!(
        "comms bench ({} mode, {} rounds on {})\n{}",
        r.mode,
        r.rounds,
        r.dataset,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_meters_compression_and_stays_deterministic() {
        let r = run(true);
        assert_eq!(r.results.len(), 3);
        let plain = &r.results[0];
        assert_eq!(plain.codec, "none");
        // Plain uploads: encoded path IS the raw path.
        assert_eq!(plain.bytes_raw, plain.bytes_encoded);
        let i8c = &r.results[1];
        assert_eq!(i8c.codec, "quant-i8");
        assert!(
            i8c.wire_reduction > 3.5,
            "quant-i8 wire reduction {}",
            i8c.wire_reduction
        );
        let chain = &r.results[2];
        assert!(
            chain.wire_reduction > i8c.wire_reduction,
            "topk chain should beat bare quant-i8"
        );
        assert!(r.results.iter().all(|c| c.bit_identical_threads));
        let json = to_json(&r);
        assert!(json.contains("\"wire_reduction\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = render_table(&r);
        assert!(table.contains("quant-i8"));
    }
}
