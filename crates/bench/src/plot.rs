//! Terminal line charts for the figure binaries: multi-series ASCII plots
//! of accuracy-vs-round / accuracy-vs-time curves, so `fig1`/`fig4`
//! outputs read as actual figures rather than tables alone.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points (x ascending not required; plotted as given).
    pub points: Vec<(f64, f64)>,
}

/// Renders series onto a `width × height` character canvas with per-series
/// glyphs, returning the chart plus a legend line.
pub fn render_chart(series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{y_max:>8.1} ┤"));
    out.push_str(&canvas[0].iter().collect::<String>());
    out.push('\n');
    for row in &canvas[1..height - 1] {
        out.push_str("         │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{y_min:>8.1} ┤"));
    out.push_str(&canvas[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("         └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "          {:<10}{:>width$.1}\n",
        format!("{x_min:.1}"),
        x_max,
        width = width.saturating_sub(10)
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.name))
        .collect();
    out.push_str(&format!("          legend: {}\n", legend.join("  ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chart_says_so() {
        assert_eq!(render_chart(&[], 10, 5), "(no data)\n");
    }

    #[test]
    fn single_series_renders_its_glyph_and_legend() {
        let s = Series {
            name: "FedGTA".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)],
        };
        let chart = render_chart(&[s], 20, 6);
        assert!(chart.contains('*'));
        assert!(chart.contains("legend: * FedGTA"));
        // Bounds on the axes.
        assert!(chart.contains("1.0"));
        assert!(chart.contains("0.0"));
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = Series {
            name: "a".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        };
        let b = Series {
            name: "b".into(),
            points: vec![(0.0, 1.0), (1.0, 0.0)],
        };
        let chart = render_chart(&[a, b], 15, 5);
        assert!(chart.contains('*') && chart.contains('o'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series {
            name: "flat".into(),
            points: vec![(0.0, 0.7), (5.0, 0.7)],
        };
        let chart = render_chart(&[s], 12, 4);
        assert!(chart.contains('*'));
    }
}
