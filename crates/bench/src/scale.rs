//! Out-of-core scale benchmark: the sweep behind `BENCH_SCALE.json`
//! (`fedgta-cli bench scale`).
//!
//! Two sections:
//!
//! 1. **SpMM cells** — per graph size, a streamed SBM is generated
//!    straight to the v2 on-disk layout ([`fedgta_data::stream_sbm`]),
//!    normalized without materialization
//!    ([`fedgta_graph::store::normalize_stream`]), then `Y = Ã·X` is timed
//!    four ways: in-memory and out-of-core, at 1 and 4 worker threads.
//!    Every cell hard-asserts all four outputs **bitwise identical** —
//!    the determinism contract of the shared per-row kernel.
//! 2. **Federated run** — the largest graph is partitioned into
//!    contiguous-block clients, each client gets a lean decoupled dataset
//!    ([`GraphDataset::for_decoupled`]), and FedGTA runs ≥ 2 federated
//!    SGC rounds. The run reports the tracked memory peaks — the
//!    `workspace.high_water_bytes` arena gauge plus the
//!    `graph.store.resident_bytes` tile gauge — and hard-asserts their
//!    sum stays under the 4 GiB laptop-class budget, plus the OS-level
//!    `VmHWM` for honesty (the bench harness itself materializes the
//!    in-memory comparison baseline, which the budget does not cover).
//!
//! Full mode runs the 10⁷-node / ~10⁸-edge configuration; quick mode is
//! the ~10⁶-node CI smoke.

use crate::format::{json_f64, json_fixed, json_str, Table};
use crate::runner::make_strategy;
use fedgta_data::{stream_sbm, SbmConfig};
use fedgta_fed::client::Client;
use fedgta_fed::round::{SimConfig, Simulation};
use fedgta_graph::io::{CsrV2Writer, IoError};
use fedgta_graph::store::{normalize_stream, ChunkedCsr, CsrBuilder, GraphStore, RowSink, TileBuf};
use fedgta_graph::NormKind;
use fedgta_nn::models::{build_model, ModelConfig, ModelKind};
use fedgta_nn::{Adam, GraphDataset, Matrix};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Tracked-memory budget the federated section must stay under.
pub const MEMORY_BUDGET_BYTES: u64 = 4 << 30;

/// Classes in every generated graph.
const NUM_CLASSES: usize = 16;
/// Blocks per class — 512 blocks total, so client counts dividing 512
/// give contiguous per-client node ranges.
const BLOCKS_PER_CLASS: usize = 32;
/// Feature width of the synthetic node features.
const FEATURE_DIM: usize = 16;
/// Row-chunk granularity of generated v2 files.
const CHUNK_ROWS: usize = 1 << 16;

/// One SpMM throughput cell.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Node count.
    pub nodes: usize,
    /// Directed stored edges of the normalized adjacency.
    pub edges: usize,
    /// Dense column width of the SpMM.
    pub cols: usize,
    /// Seconds to stream-generate the raw graph to disk.
    pub gen_s: f64,
    /// Seconds to stream-normalize it (two passes, no materialization).
    pub norm_s: f64,
    /// Seconds per in-memory SpMM at 1 thread.
    pub mem_1t_s: f64,
    /// Seconds per in-memory SpMM at 4 threads.
    pub mem_4t_s: f64,
    /// Seconds per out-of-core SpMM at 1 thread.
    pub disk_1t_s: f64,
    /// Seconds per out-of-core SpMM at 4 threads.
    pub disk_4t_s: f64,
    /// Out-of-core 1-thread edge throughput (edges/s).
    pub disk_edges_per_s: f64,
    /// All four outputs bitwise equal (hard-asserted).
    pub bit_identical: bool,
}

/// The federated-scale section.
#[derive(Debug, Clone)]
pub struct ScaleFedStats {
    /// Node count of the federated graph.
    pub nodes: usize,
    /// Directed stored edges of the raw graph.
    pub edges: usize,
    /// Client count (contiguous block groups).
    pub clients: usize,
    /// Communication rounds run.
    pub rounds: usize,
    /// Participation fraction per round.
    pub participation: f64,
    /// Seconds to stream-generate the raw graph (0 when a cell's file is
    /// reused).
    pub gen_s: f64,
    /// Seconds to extract all client subgraphs from the v2 file and build
    /// their datasets/models.
    pub build_s: f64,
    /// Seconds for the federated rounds (training + aggregation).
    pub run_s: f64,
    /// Global test accuracy after the last round.
    pub final_acc: f64,
    /// `workspace.high_water_bytes` gauge after the run.
    pub workspace_hwm_bytes: u64,
    /// `graph.store.resident_bytes` gauge high-water after the run.
    pub store_resident_peak_bytes: u64,
    /// Sum of the two tracked peaks.
    pub tracked_peak_bytes: u64,
    /// Tracked peak within [`MEMORY_BUDGET_BYTES`] (hard-asserted).
    pub within_budget: bool,
    /// OS-level peak resident set (`VmHWM`, bytes) of the whole process —
    /// includes the bench harness's in-memory baselines, not just the
    /// out-of-core path.
    pub vm_hwm_bytes: Option<u64>,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// SpMM throughput cells, smallest first.
    pub cells: Vec<ScaleCell>,
    /// The federated-scale section.
    pub fed: ScaleFedStats,
}

struct Grid {
    /// `(nodes, avg_degree)` per SpMM cell.
    cells: Vec<(usize, f64)>,
    fed_nodes: usize,
    fed_avg_degree: f64,
    fed_clients: usize,
    fed_rounds: usize,
    participation: f64,
}

impl Grid {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                cells: vec![(200_000, 8.0)],
                fed_nodes: 1_000_000,
                fed_avg_degree: 8.0,
                fed_clients: 32,
                fed_rounds: 2,
                participation: 0.25,
            }
        } else {
            Self {
                cells: vec![(100_000, 8.0), (1_000_000, 8.0), (10_000_000, 11.0)],
                fed_nodes: 10_000_000,
                fed_avg_degree: 11.0,
                fed_clients: 64,
                fed_rounds: 2,
                participation: 0.25,
            }
        }
    }
}

/// SplitMix64 — the deterministic hash behind synthetic features and
/// train/val/test membership.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform float in `[-0.5, 0.5)` from a hash.
fn hash_unit(x: u64) -> f32 {
    (splitmix64(x) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
}

/// The SBM config every section uses (same structure, so the federated
/// run can reuse a cell's generated file).
fn sbm_config(n: usize, avg_degree: f64, seed: u64) -> SbmConfig {
    SbmConfig::with_homophily(n, NUM_CLASSES, BLOCKS_PER_CLASS, avg_degree, 0.7, seed)
}

/// Deterministic synthetic features for global node `g`: label-aligned
/// signal plus hash noise, so a logistic head on propagated features has
/// something to learn.
fn node_features(g: u32, label: u32, seed: u64, out: &mut [f32]) {
    for (j, o) in out.iter_mut().enumerate() {
        *o = hash_unit(seed ^ ((g as u64) << 8) ^ j as u64);
    }
    out[label as usize % out.len()] += 1.5;
}

/// Deterministic split of global node `g`: 60 / 20 / 20.
fn node_split(g: u32, seed: u64) -> u8 {
    match splitmix64(seed ^ 0xA5A5_0000 ^ g as u64) % 10 {
        0..=5 => 0,
        6 | 7 => 1,
        _ => 2,
    }
}

/// A generated raw graph on disk plus its ground truth.
pub struct RawGraph {
    /// Path of the raw (unnormalized) v2 file.
    pub path: PathBuf,
    /// Class label per node.
    pub labels: Vec<u32>,
    /// Directed stored edges.
    pub edges: usize,
    /// Seconds the streamed generation took.
    pub gen_s: f64,
}

/// Streams an SBM of `n` nodes to a raw v2 file under `dir`.
pub fn generate_raw(n: usize, avg_degree: f64, seed: u64, dir: &Path) -> Result<RawGraph, IoError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("scale-raw-{n}-{seed}.fgta2"));
    let t0 = Instant::now();
    let writer = CsrV2Writer::create(&path, n, CHUNK_ROWS)?;
    let cfg = sbm_config(n, avg_degree, seed);
    let out = stream_sbm(&cfg, dir, writer)?;
    Ok(RawGraph {
        path,
        labels: out.labels,
        edges: out.output.edges as usize,
        gen_s: t0.elapsed().as_secs_f64(),
    })
}

/// Times `reps` SpMMs through `store` and returns (seconds-per-spmm).
fn time_spmm(store: &GraphStore, x: &[f32], cols: usize, y: &mut [f32], threads: usize, reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        store.spmm_into_threads(x, cols, y, threads).expect("spmm");
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Runs one SpMM throughput cell; returns the cell and (when
/// `keep_raw`) the generated raw graph for reuse.
pub fn run_cell(n: usize, avg_degree: f64, seed: u64, dir: &Path, keep_raw: bool) -> (ScaleCell, Option<RawGraph>) {
    let raw = generate_raw(n, avg_degree, seed, dir).expect("streamed SBM generation");
    let gen_s = raw.gen_s;
    let norm_path = dir.join(format!("scale-norm-{n}-{seed}.fgta2"));
    let t0 = Instant::now();
    let raw_store = ChunkedCsr::open(&raw.path).expect("open raw v2");
    let writer = CsrV2Writer::create(&norm_path, n, CHUNK_ROWS).expect("create norm v2");
    let summary = normalize_stream(&raw_store, NormKind::Symmetric, writer).expect("streamed normalization");
    drop(raw_store);
    let norm_s = t0.elapsed().as_secs_f64();
    let edges = summary.edges as usize;

    let disk = GraphStore::open(&norm_path).expect("open normalized v2");
    let mem = GraphStore::Mem(disk.to_csr().expect("materialize normalized adjacency"));

    let cols = FEATURE_DIM;
    let x: Vec<f32> = (0..n * cols).map(|i| hash_unit(seed ^ 0x5eed ^ i as u64)).collect();
    let mut y_ref = vec![0f32; n * cols];
    let mut y = vec![0f32; n * cols];
    let reps = if edges < 2_000_000 { 5 } else { 1 };

    let mem_1t_s = time_spmm(&mem, &x, cols, &mut y_ref, 1, reps);
    let mem_4t_s = time_spmm(&mem, &x, cols, &mut y, 4, reps);
    let mut bit_identical = y == y_ref;
    let disk_1t_s = time_spmm(&disk, &x, cols, &mut y, 1, reps);
    bit_identical &= y == y_ref;
    let disk_4t_s = time_spmm(&disk, &x, cols, &mut y, 4, reps);
    bit_identical &= y == y_ref;
    assert!(
        bit_identical,
        "scale cell n={n}: in-memory / out-of-core / thread-count outputs differ bitwise"
    );

    drop(disk);
    let _ = std::fs::remove_file(&norm_path);
    let raw = if keep_raw {
        Some(raw)
    } else {
        let _ = std::fs::remove_file(&raw.path);
        None
    };
    (
        ScaleCell {
            nodes: n,
            edges,
            cols,
            gen_s,
            norm_s,
            mem_1t_s,
            mem_4t_s,
            disk_1t_s,
            disk_4t_s,
            disk_edges_per_s: edges as f64 / disk_1t_s,
            bit_identical,
        },
        raw,
    )
}

/// Contiguous node range of client `c` out of `clients` (grouping
/// consecutive blocks, mirroring the SBM's block geometry).
fn client_range(n: usize, clients: usize, c: usize) -> std::ops::Range<usize> {
    let num_blocks = NUM_CLASSES * BLOCKS_PER_CLASS;
    let bpc = num_blocks / clients;
    let b0 = c * bpc;
    let b1 = (c + 1) * bpc;
    (n * b0 / num_blocks)..(n * b1 / num_blocks)
}

/// Extracts every client's induced subgraph in **one pass** over the v2
/// file's tiles: client ranges are contiguous and ascending, so each row
/// lands in exactly one in-flight [`CsrBuilder`].
fn extract_client_graphs(store: &ChunkedCsr, n: usize, clients: usize) -> Vec<fedgta_graph::Csr> {
    let ranges: Vec<_> = (0..clients).map(|c| client_range(n, clients, c)).collect();
    let mut builders: Vec<CsrBuilder> = ranges.iter().map(|r| CsrBuilder::new(r.len())).collect();
    let mut reader = store.reader().expect("tile reader");
    let mut tile = TileBuf::new();
    let mut cur = 0usize;
    let mut row: Vec<u32> = Vec::new();
    for c in 0..store.num_chunks() {
        reader.read_tile(c, &mut tile).expect("tile read");
        for r in 0..tile.num_rows() {
            let g = tile.rows.start + r;
            while g >= ranges[cur].end {
                cur += 1;
            }
            let (lo, hi) = (ranges[cur].start as u32, ranges[cur].end as u32);
            row.clear();
            row.extend(
                tile.row_neighbors(r)
                    .iter()
                    .filter(|&&v| v >= lo && v < hi)
                    .map(|&v| v - lo),
            );
            builders[cur].push_row(&row, None).expect("in-range row");
        }
    }
    builders.into_iter().map(|b| b.finish().expect("client CSR")).collect()
}

/// Builds the federated clients from a generated raw graph: lean
/// decoupled datasets (no mean-aggregation matrices), deterministic
/// features/splits, SGC backbones.
pub fn build_scale_clients(raw: &RawGraph, clients: usize, seed: u64) -> Vec<Client> {
    let store = ChunkedCsr::open(&raw.path).expect("open raw v2");
    let n = store.num_nodes();
    let graphs = extract_client_graphs(&store, n, clients);
    drop(store);
    graphs
        .into_iter()
        .enumerate()
        .map(|(id, g)| {
            let range = client_range(n, clients, id);
            let nc = range.len();
            let mut feats = vec![0f32; nc * FEATURE_DIM];
            let labels: Vec<u32> = raw.labels[range.clone()].to_vec();
            let (mut train, mut val, mut test) = (Vec::new(), Vec::new(), Vec::new());
            for (local, &lab) in labels.iter().enumerate() {
                let g_id = (range.start + local) as u32;
                node_features(g_id, lab, seed, &mut feats[local * FEATURE_DIM..(local + 1) * FEATURE_DIM]);
                match node_split(g_id, seed) {
                    0 => train.push(local as u32),
                    1 => val.push(local as u32),
                    _ => test.push(local as u32),
                }
            }
            let data = GraphDataset::for_decoupled(
                &g,
                Matrix::from_vec(nc, FEATURE_DIM, feats),
                labels,
                NUM_CLASSES,
                train,
                val,
                test,
            );
            let model_cfg = ModelConfig {
                kind: ModelKind::Sgc,
                hidden: 32,
                layers: 1,
                k: 2,
                batch_size: 1024,
                seed: seed.wrapping_add(id as u64 * 1013),
                ..ModelConfig::default()
            };
            let model = build_model(&model_cfg, FEATURE_DIM, NUM_CLASSES);
            Client {
                id,
                data,
                eval_data: None,
                model,
                opt: Box::new(Adam::new(0.02, 5e-4)),
                global_ids: range.map(|v| v as u32).collect(),
                metric_scratch: None,
                ef: None,
            }
        })
        .collect()
}

/// Peak resident set of this process (`VmHWM` from `/proc/self/status`),
/// in bytes. `None` off Linux.
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Runs the federated section on an already-generated raw graph.
pub fn run_fed(raw: &RawGraph, grid_clients: usize, rounds: usize, participation: f64, seed: u64) -> ScaleFedStats {
    // The memory proof reads the workspace high-water gauge, which only
    // records while metrics are armed.
    fedgta_obs::set_level(fedgta_obs::ObsLevel::Metrics);
    let t0 = Instant::now();
    let clients = build_scale_clients(raw, grid_clients, seed);
    let build_s = t0.elapsed().as_secs_f64();
    let n = raw.labels.len();

    let t0 = Instant::now();
    let mut sim = Simulation::new(
        clients,
        make_strategy("FedGTA"),
        SimConfig {
            rounds,
            local_epochs: 2,
            participation,
            eval_every: 1,
            seed,
            threads: 0,
        },
    );
    let records = sim.run();
    let run_s = t0.elapsed().as_secs_f64();
    assert!(records.len() >= 2, "scale protocol requires >= 2 federated rounds");
    let final_acc = records.iter().rev().find_map(|r| r.test_acc).unwrap_or(0.0);

    let reg = fedgta_obs::global();
    let workspace_hwm_bytes = reg.gauge("workspace.high_water_bytes").get();
    let store_resident_peak_bytes = reg.gauge("graph.store.resident_bytes").get();
    let tracked_peak_bytes = workspace_hwm_bytes + store_resident_peak_bytes;
    let within_budget = tracked_peak_bytes <= MEMORY_BUDGET_BYTES;
    assert!(
        within_budget,
        "tracked peak {tracked_peak_bytes} bytes exceeds the {MEMORY_BUDGET_BYTES}-byte budget"
    );
    ScaleFedStats {
        nodes: n,
        edges: raw.edges,
        clients: grid_clients,
        rounds: records.len(),
        participation,
        gen_s: raw.gen_s,
        build_s,
        run_s,
        final_acc,
        workspace_hwm_bytes,
        store_resident_peak_bytes,
        tracked_peak_bytes,
        within_budget,
        vm_hwm_bytes: vm_hwm_bytes(),
    }
}

/// Scratch directory for generated graphs (`FEDGTA_SCALE_DIR` overrides;
/// defaults to a per-process dir under the system temp root, which must
/// be disk-backed for the out-of-core measurements to mean anything).
pub fn scratch_dir() -> PathBuf {
    match std::env::var("FEDGTA_SCALE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir().join(format!("fedgta-scale-{}", std::process::id())),
    }
}

/// Runs the sweep. `quick` is the CI smoke grid.
pub fn run(quick: bool) -> ScaleReport {
    fedgta_obs::set_level(fedgta_obs::ObsLevel::Metrics);
    let grid = Grid::new(quick);
    let dir = scratch_dir();
    let seed = 11u64;
    let mut cells = Vec::new();
    let mut fed_raw: Option<RawGraph> = None;
    for &(n, deg) in &grid.cells {
        let reuse = n == grid.fed_nodes && deg == grid.fed_avg_degree;
        let (cell, raw) = run_cell(n, deg, seed, &dir, reuse);
        if let Some(raw) = raw {
            fed_raw = Some(raw);
        }
        cells.push(cell);
    }
    let raw = fed_raw.unwrap_or_else(|| {
        generate_raw(grid.fed_nodes, grid.fed_avg_degree, seed, &dir).expect("streamed SBM generation")
    });
    let fed = run_fed(&raw, grid.fed_clients, grid.fed_rounds, grid.participation, seed);
    let _ = std::fs::remove_file(&raw.path);
    ScaleReport {
        mode: if quick { "quick" } else { "full" },
        cells,
        fed,
    }
}

/// Hand-rolled JSON via the [`crate::format`] helpers.
pub fn to_json(r: &ScaleReport) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"mode\": {},\n", json_str(r.mode)));
    s.push_str(&format!("  \"memory_budget_bytes\": {},\n", MEMORY_BUDGET_BYTES));
    s.push_str("  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"nodes\": {}, \"edges\": {}, \"cols\": {}, \"gen_s\": {}, \"norm_s\": {}, \
             \"mem_1t_s\": {}, \"mem_4t_s\": {}, \"disk_1t_s\": {}, \"disk_4t_s\": {}, \
             \"disk_edges_per_s\": {}, \"bit_identical\": {}}}{}\n",
            c.nodes,
            c.edges,
            c.cols,
            json_fixed(c.gen_s, 3),
            json_fixed(c.norm_s, 3),
            json_fixed(c.mem_1t_s, 4),
            json_fixed(c.mem_4t_s, 4),
            json_fixed(c.disk_1t_s, 4),
            json_fixed(c.disk_4t_s, 4),
            json_fixed(c.disk_edges_per_s, 0),
            c.bit_identical,
            if i + 1 < r.cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let f = &r.fed;
    let vm = f.vm_hwm_bytes.map_or_else(|| "null".to_string(), |v| v.to_string());
    s.push_str("  \"federated\": {\n");
    s.push_str(&format!(
        "    \"nodes\": {}, \"edges\": {}, \"clients\": {}, \"rounds\": {}, \"participation\": {},\n",
        f.nodes,
        f.edges,
        f.clients,
        f.rounds,
        json_fixed(f.participation, 2)
    ));
    s.push_str(&format!(
        "    \"gen_s\": {}, \"build_s\": {}, \"run_s\": {}, \"final_acc\": {},\n",
        json_fixed(f.gen_s, 3),
        json_fixed(f.build_s, 3),
        json_fixed(f.run_s, 3),
        json_f64(f.final_acc)
    ));
    s.push_str(&format!(
        "    \"workspace_hwm_bytes\": {}, \"store_resident_peak_bytes\": {}, \
         \"tracked_peak_bytes\": {}, \"within_budget\": {}, \"vm_hwm_bytes\": {}\n",
        f.workspace_hwm_bytes, f.store_resident_peak_bytes, f.tracked_peak_bytes, f.within_budget, vm
    ));
    s.push_str("  }\n}\n");
    s
}

/// Plain-text tables for terminal output.
pub fn render_table(r: &ScaleReport) -> String {
    let mut t = Table::new(&[
        "nodes",
        "edges",
        "gen s",
        "norm s",
        "mem 1t s",
        "mem 4t s",
        "disk 1t s",
        "disk 4t s",
        "Medge/s",
        "bitwise",
    ]);
    for c in &r.cells {
        t.row(vec![
            c.nodes.to_string(),
            c.edges.to_string(),
            format!("{:.2}", c.gen_s),
            format!("{:.2}", c.norm_s),
            format!("{:.4}", c.mem_1t_s),
            format!("{:.4}", c.mem_4t_s),
            format!("{:.4}", c.disk_1t_s),
            format!("{:.4}", c.disk_4t_s),
            format!("{:.1}", c.disk_edges_per_s / 1e6),
            if c.bit_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let f = &r.fed;
    format!(
        "scale bench ({} mode, cols {})\n{}\nfederated: {} nodes / {} edges, {} clients, {} rounds \
         (participation {:.2}) — gen {:.1}s, build {:.1}s, run {:.1}s, final acc {:.3}\n\
         tracked memory: workspace HWM {:.1} MiB + store resident peak {:.1} MiB = {:.1} MiB \
         (budget {:.0} MiB, within: {}){}\n",
        r.mode,
        FEATURE_DIM,
        t.render(),
        f.nodes,
        f.edges,
        f.clients,
        f.rounds,
        f.participation,
        f.gen_s,
        f.build_s,
        f.run_s,
        f.final_acc,
        f.workspace_hwm_bytes as f64 / (1 << 20) as f64,
        f.store_resident_peak_bytes as f64 / (1 << 20) as f64,
        f.tracked_peak_bytes as f64 / (1 << 20) as f64,
        MEMORY_BUDGET_BYTES as f64 / (1 << 20) as f64,
        f.within_budget,
        f.vm_hwm_bytes.map_or_else(String::new, |v| {
            format!("\nprocess VmHWM: {:.1} MiB (includes in-memory comparison baselines)", v as f64 / (1 << 20) as f64)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cell_is_bit_identical_and_cleans_up() {
        let dir = scratch_dir().join("cell-test");
        let (cell, raw) = run_cell(4_096, 6.0, 3, &dir, false);
        assert!(raw.is_none());
        assert!(cell.bit_identical);
        assert!(cell.edges > 4_096);
        assert!(
            std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) == 0,
            "cell left scratch files behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_fed_run_stays_in_budget_and_reports_gauges() {
        let dir = scratch_dir().join("fed-test");
        let raw = generate_raw(6_000, 6.0, 5, &dir).expect("generate");
        let stats = run_fed(&raw, 4, 2, 1.0, 5);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.clients, 4);
        assert!(stats.within_budget);
        assert!(stats.workspace_hwm_bytes > 0, "workspace gauge never rose");
        assert!(
            stats.store_resident_peak_bytes > 0,
            "store resident gauge never rose"
        );
        assert!(stats.final_acc > 1.0 / NUM_CLASSES as f64, "no learning signal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn client_ranges_partition_the_nodes() {
        let n = 10_007;
        let clients = 16;
        let mut prev_end = 0;
        for c in 0..clients {
            let r = client_range(n, clients, c);
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
        }
        assert_eq!(prev_end, n);
    }

    #[test]
    fn json_is_balanced() {
        let cell = ScaleCell {
            nodes: 10,
            edges: 20,
            cols: 4,
            gen_s: 0.1,
            norm_s: 0.1,
            mem_1t_s: 0.01,
            mem_4t_s: 0.01,
            disk_1t_s: 0.01,
            disk_4t_s: 0.01,
            disk_edges_per_s: 2000.0,
            bit_identical: true,
        };
        let fed = ScaleFedStats {
            nodes: 10,
            edges: 20,
            clients: 2,
            rounds: 2,
            participation: 1.0,
            gen_s: 0.1,
            build_s: 0.1,
            run_s: 0.1,
            final_acc: 0.5,
            workspace_hwm_bytes: 1,
            store_resident_peak_bytes: 1,
            tracked_peak_bytes: 2,
            within_budget: true,
            vm_hwm_bytes: None,
        };
        let r = ScaleReport {
            mode: "quick",
            cells: vec![cell],
            fed,
        };
        let json = to_json(&r);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"tracked_peak_bytes\""));
        assert!(render_table(&r).contains("federated"));
    }
}
