//! A counting global allocator for allocation-budget measurements.
//!
//! Rust requires `#[global_allocator]` to be declared in the final binary
//! (or test) crate, so this module only provides the building blocks: the
//! [`CountingAlloc`] type and the [`alloc_count`] reader. A binary opts in
//! with two lines:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fedgta_bench::alloc::CountingAlloc = fedgta_bench::alloc::CountingAlloc;
//! ```
//!
//! The counter is monotone; callers diff two reads around the region of
//! interest. Only `alloc`/`realloc` count — frees are irrelevant to the
//! "how many heap allocations does this path perform" question the kernel
//! benchmark and `crates/bench/tests/alloc_count.rs` ask.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of heap allocations since process start (monotone).
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A [`System`]-backed allocator that counts `alloc`/`realloc` calls.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
