//! The experiment runner: benchmark → partition → federation → rounds.

use fedgta::{FedGta, FedGtaConfig};
use fedgta_data::{load_benchmark, Benchmark};
use fedgta_fed::client::{build_clients, ClientBuildConfig};
use fedgta_fed::fgl_models::{FedGl, FedSagePlus};
use fedgta_fed::round::{best_accuracy, RoundRecord, SimConfig, Simulation};
use fedgta_fed::strategies::{FedAvg, FedDc, FedProx, GcflPlus, LocalOnly, Moon, Scaffold, Strategy};
use fedgta_nn::loss::softmax_ce;
use fedgta_nn::metrics::accuracy;
use fedgta_nn::models::{build_model, ModelConfig, ModelKind};
use fedgta_nn::{Adam, TrainHooks};
use fedgta_partition::{communities_to_clients, louvain, metis_kway, LouvainConfig, MetisConfig, Partition};

/// Which federated split simulation to use (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Louvain communities packed onto clients.
    Louvain,
    /// Metis-style balanced k-way partition.
    Metis,
}

impl SplitKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SplitKind::Louvain => "Louvain",
            SplitKind::Metis => "Metis",
        }
    }
}

/// The strategy names the runner accepts.
pub const STRATEGY_NAMES: &[&str] = &[
    "Local", "FedAvg", "FedProx", "Scaffold", "MOON", "FedDC", "GCFL+", "FedGTA",
    "FedGTA-noMom", "FedGTA-noConf",
];

/// Builds a strategy by name (paper-default hyperparameters).
///
/// `FedGL+X` / `FedSage++X` wrap the named inner strategy with the FGL
/// Model baselines (Table 5).
pub fn make_strategy(name: &str) -> Box<dyn Strategy> {
    if let Some(inner) = name.strip_prefix("FedGL+") {
        return Box::new(FedGl::new(make_strategy(inner)));
    }
    if let Some(inner) = name.strip_prefix("FedSage++") {
        return Box::new(FedSagePlus::new(make_strategy(inner)));
    }
    match name {
        "Local" => Box::new(LocalOnly::new()),
        "FedAvg" => Box::new(FedAvg::new()),
        "FedProx" => Box::new(FedProx::new(0.01)),
        "Scaffold" => Box::new(Scaffold::new()),
        "MOON" => Box::new(Moon::new(1.0, 0.5)),
        "FedDC" => Box::new(FedDc::new(0.01)),
        "GCFL+" => Box::new(GcflPlus::new(5, 1.1)),
        "FedGTA" => Box::new(FedGta::with_defaults()),
        "FedGTA-noMom" => Box::new(FedGta::new(FedGtaConfig::without_moments())),
        "FedGTA-noConf" => Box::new(FedGta::new(FedGtaConfig::without_confidence())),
        other => panic!("unknown strategy '{other}'"),
    }
}

/// Partitions a benchmark into `n_clients` federated subgraphs.
pub fn partition_benchmark(
    bench: &Benchmark,
    split: SplitKind,
    n_clients: usize,
    seed: u64,
) -> Partition {
    match split {
        SplitKind::Louvain => {
            // Louvain's resolution limit can merge planted communities
            // below the client count; escalate the resolution until enough
            // communities exist (real FGL pipelines hit the same issue on
            // dense graphs). Metis remains the last-resort fallback.
            for resolution in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
                let comm = louvain(
                    &bench.graph,
                    &LouvainConfig {
                        seed,
                        resolution,
                        ..LouvainConfig::default()
                    },
                );
                if comm.num_parts >= n_clients {
                    return communities_to_clients(&comm, n_clients)
                        .expect("enough communities");
                }
            }
            metis_kway(&bench.graph, n_clients, &MetisConfig { seed, ..MetisConfig::default() })
                .expect("valid k")
        }
        SplitKind::Metis => metis_kway(
            &bench.graph,
            n_clients,
            &MetisConfig {
                seed,
                ..MetisConfig::default()
            },
        )
        .expect("valid k"),
    }
}

/// One experiment cell: dataset × model × strategy × split.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Catalog dataset name.
    pub dataset: String,
    /// Local model backbone.
    pub model: ModelKind,
    /// Strategy name (see [`make_strategy`]).
    pub strategy: String,
    /// Federated split simulation.
    pub split: SplitKind,
    /// Number of clients.
    pub clients: usize,
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs per round.
    pub epochs: usize,
    /// Independent runs (different seeds); paper uses 10.
    pub runs: usize,
    /// Client participation fraction per round.
    pub participation: f64,
    /// Hidden width of the local model.
    pub hidden: usize,
    /// Evaluate every this many rounds (trade accuracy-curve resolution
    /// for wall-clock).
    pub eval_every: usize,
    /// Build halo (ghost-node) clients — required by FedGL/FedSage+.
    pub halo: bool,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for client-parallel local training (0 = auto).
    /// Never affects results — only wall clock.
    pub threads: usize,
}

impl ExperimentSpec {
    /// A sensible default cell; override fields as needed.
    pub fn new(dataset: &str, model: ModelKind, strategy: &str) -> Self {
        Self {
            dataset: dataset.to_string(),
            model,
            strategy: strategy.to_string(),
            split: SplitKind::Louvain,
            clients: 10,
            rounds: 30,
            epochs: 3,
            runs: 2,
            participation: 1.0,
            hidden: 32,
            eval_every: 1,
            halo: false,
            seed: 0,
            threads: 0,
        }
    }
}

/// Aggregated result over runs.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Mean of the best test accuracy across runs.
    pub mean: f64,
    /// Population standard deviation across runs.
    pub std: f64,
    /// Per-run round records.
    pub histories: Vec<Vec<RoundRecord>>,
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Runs one experiment cell over `spec.runs` seeds.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let mut bests = Vec::with_capacity(spec.runs);
    let mut histories = Vec::with_capacity(spec.runs);
    for run in 0..spec.runs {
        let seed = spec.seed + run as u64;
        let bench = load_benchmark(&spec.dataset, seed).expect("known dataset");
        let parts = partition_benchmark(&bench, spec.split, spec.clients, seed);
        let needs_halo = spec.halo || spec.strategy.starts_with("FedGL");
        let clients = build_clients(
            &bench,
            &parts,
            &ClientBuildConfig {
                model: ModelConfig {
                    kind: spec.model,
                    hidden: spec.hidden,
                    layers: if spec.model == ModelKind::Sgc { 1 } else { 2 },
                    k: 5,
                    beta: 0.15,
                    batch_size: 256,
                    seed,
                    ..ModelConfig::default()
                },
                lr: 0.02,
                weight_decay: 5e-4,
                halo: needs_halo,
            },
        );
        let mut sim = Simulation::new(
            clients,
            make_strategy(&spec.strategy),
            SimConfig {
                rounds: spec.rounds,
                local_epochs: spec.epochs,
                participation: spec.participation,
                eval_every: spec.eval_every,
                seed,
                threads: spec.threads,
            },
        );
        let records = sim.run();
        bests.push(best_accuracy(&records));
        histories.push(records);
    }
    let (mean, std) = mean_std(&bests);
    ExperimentResult {
        mean,
        std,
        histories,
    }
}

/// The "Global" row of Table 3: centralized training on the full graph.
pub fn run_global(
    dataset: &str,
    model: ModelKind,
    hidden: usize,
    epochs: usize,
    runs: usize,
    seed: u64,
) -> (f64, f64) {
    let mut accs = Vec::with_capacity(runs);
    for run in 0..runs {
        let s = seed + run as u64;
        let bench = load_benchmark(dataset, s).expect("known dataset");
        let data = bench.to_dataset();
        let mut m = build_model(
            &ModelConfig {
                kind: model,
                hidden,
                layers: if model == ModelKind::Sgc { 1 } else { 2 },
                k: 5,
                beta: 0.15,
                batch_size: 256,
                seed: s,
                ..ModelConfig::default()
            },
            data.num_features(),
            data.num_classes,
        );
        let mut opt = Adam::new(0.02, 5e-4);
        let mut best = 0f64;
        for e in 0..epochs {
            m.train_epoch(&data, &mut opt, &mut TrainHooks::none());
            if e % 5 == 4 || e + 1 == epochs {
                let probs = m.predict(&data);
                best = best.max(accuracy(&probs, &data.labels, &data.test_nodes));
            }
        }
        // Sanity: loss is finite.
        let (l, _) = softmax_ce(
            &m.predict(&data),
            &data.labels,
            &data.train_nodes,
        );
        debug_assert!(l.is_finite());
        accs.push(best);
    }
    mean_std(&accs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategy_names_resolve() {
        for name in STRATEGY_NAMES {
            let s = make_strategy(name);
            assert!(!s.name().is_empty());
        }
        assert_eq!(make_strategy("FedGL+FedAvg").name(), "FedGL+FedAvg");
        assert_eq!(make_strategy("FedSage++MOON").name(), "FedSage++MOON");
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn unknown_strategy_panics() {
        make_strategy("FedMagic");
    }

    #[test]
    fn quick_experiment_cell_runs() {
        let mut spec = ExperimentSpec::new("cora", ModelKind::Sgc, "FedGTA");
        spec.rounds = 3;
        spec.runs = 1;
        spec.clients = 4;
        spec.eval_every = 3;
        let r = run_experiment(&spec);
        assert!(r.mean > 0.2, "accuracy {}", r.mean);
        assert_eq!(r.histories.len(), 1);
    }

    #[test]
    fn global_baseline_runs() {
        let (mean, _) = run_global("cora", ModelKind::Sgc, 16, 10, 1, 0);
        assert!(mean > 0.3, "global acc {mean}");
    }

    #[test]
    fn partitioners_produce_requested_clients() {
        let bench = load_benchmark("cora", 0).unwrap();
        for split in [SplitKind::Louvain, SplitKind::Metis] {
            let p = partition_benchmark(&bench, split, 10, 0);
            assert_eq!(p.num_parts, 10, "{:?}", split);
        }
    }
}
