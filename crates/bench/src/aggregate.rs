//! Server-round microbenchmark: the parallel, allocation-free
//! personalized aggregation path (Eqs. 6–7).
//!
//! Two entry points consume this module:
//!
//! - the `aggregate` bench binary (`cargo run --release -p fedgta-bench
//!   --bin aggregate`), which installs the counting allocator and writes
//!   `BENCH_AGGREGATE.json`;
//! - `fedgta-cli bench aggregate [--mode quick|full]`, the runner
//!   subcommand (no allocator instrumentation — allocation counts are
//!   reported as `null`).
//!
//! The grid follows the server hot path: participants `n ∈ {8, 32, 128}`
//! (one `ClientUpload` each) × flat parameter length `plen ∈ {1e4, 1e5}`
//! (SGC-head … MLP-head scale), each cell timed through
//! [`fedgta::personalized_aggregate_into`] at 1 and 4 worker threads.
//! Every cell also asserts the two thread counts produce **bit-identical**
//! outputs — the determinism contract is checked on the exact buffers the
//! timing loop touched, not a toy shape. `--test` mode shrinks the grid
//! so CI can smoke the pipeline in well under a second.

use crate::kernels::{count_allocs, time_fn, AllocCounter};
use fedgta::{AggregateOptions, ClientUpload, SimilarityKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One timed cell: a `(participants, plen, threads)` triple.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    /// Participating clients `n` (similarity is `n²`, Eq. 7 is `n` rows).
    pub participants: usize,
    /// Flat parameter vector length per client.
    pub plen: usize,
    /// Worker threads requested for this cell.
    pub threads: usize,
    /// Wall time per full `personalized_aggregate_into` call (ns).
    pub ns_per_call: f64,
    /// Effective axpy bandwidth: bytes of member parameters streamed per
    /// second (GB/s), `4·Σᵢ|Iᵢ|·plen / t` — the Eq. 7 loop is
    /// memory-bound, so this is the honest throughput axis.
    pub gbps: f64,
    /// Heap allocations per warm call with recycled output buffers
    /// (`None` when the host binary has no counting allocator). Warm
    /// calls still pay O(n) bookkeeping (member lists, similarity rows)
    /// but **no parameter-sized allocations** — the binary enforces that
    /// this count does not change with `plen`.
    pub allocs_per_call: Option<u64>,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct AggregateReport {
    /// `"quick"` (`--test`) or `"full"`.
    pub mode: &'static str,
    /// Hardware threads the host reports (`available_parallelism`).
    pub cores: usize,
    /// All timed cells.
    pub results: Vec<AggregateResult>,
    /// `ns(1 thread) ÷ ns(4 threads)` at the headline shape.
    pub speedup_4v1: f64,
    /// The `(participants, plen)` the speedup headline is measured at.
    pub headline: (usize, usize),
    /// Whether every cell's 4-thread output was bitwise equal to its
    /// 1-thread output (hard-asserted during the run; recorded for the
    /// JSON artifact).
    pub bit_identical: bool,
}

/// Deterministic synthetic uploads: `n` clients with `plen` parameters,
/// 60-float moment sketches in two loose clusters (so the ε-filter keeps
/// some pairs apart and the member sets are non-trivial), and positive
/// confidences.
struct Uploads {
    params: Vec<Vec<f32>>,
    moments: Vec<Vec<f32>>,
    confidence: Vec<f64>,
}

impl Uploads {
    fn synth(n: usize, plen: usize, rng: &mut StdRng) -> Self {
        const SKETCH: usize = 60; // k=5 steps × K=2 orders × |Y|=6 classes
        let mut params = Vec::with_capacity(n);
        let mut moments = Vec::with_capacity(n);
        let mut confidence = Vec::with_capacity(n);
        for i in 0..n {
            params.push((0..plen).map(|_| rng.random::<f32>() - 0.5).collect());
            // Two cluster centers ± per-client jitter.
            let center = if i % 2 == 0 { 1.0f32 } else { -1.0 };
            moments.push(
                (0..SKETCH)
                    .map(|j| center * (1.0 + j as f32 * 0.01) + 0.2 * (rng.random::<f32>() - 0.5))
                    .collect(),
            );
            confidence.push(0.5 + rng.random::<f64>());
        }
        Self {
            params,
            moments,
            confidence,
        }
    }

    fn views(&self) -> Vec<ClientUpload<'_>> {
        (0..self.params.len())
            .map(|i| ClientUpload {
                params: &self.params[i],
                confidence: self.confidence[i],
                moments: &self.moments[i],
                n_train: 10 + i,
            })
            .collect()
    }
}

struct Grid {
    participants: Vec<usize>,
    plens: Vec<usize>,
    min_ns: u64,
    max_calls: usize,
}

impl Grid {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                participants: vec![8],
                plens: vec![4_096],
                min_ns: 0,
                max_calls: 1,
            }
        } else {
            Self {
                participants: vec![8, 32, 128],
                plens: vec![10_000, 100_000],
                min_ns: 100_000_000,
                max_calls: 40,
            }
        }
    }
}

/// Runs the suite. `quick` is the CI `--test` mode; `counter` enables
/// allocation counting when the host binary installed [`crate::alloc`].
pub fn run(quick: bool, counter: Option<AllocCounter>) -> AggregateReport {
    let grid = Grid::new(quick);
    let headline = if quick {
        (grid.participants[0], grid.plens[0])
    } else {
        (32, 100_000)
    };
    let opts = AggregateOptions {
        epsilon: 0.0,
        epsilon_quantile: None,
        similarity: SimilarityKind::Cosine,
        use_moments: true,
        use_confidence: true,
    };
    let mut rng = StdRng::seed_from_u64(0xa99_4e64);
    let mut results = Vec::new();
    let (mut headline_1t, mut headline_4t) = (f64::NAN, f64::NAN);
    let mut bit_identical = true;

    for &n in &grid.participants {
        for &plen in &grid.plens {
            let uploads = Uploads::synth(n, plen, &mut rng);
            let views = uploads.views();
            // Streamed member-parameter bytes per call: Σᵢ 4·|Iᵢ|·plen.
            let probe = fedgta::personalized_aggregate(&views, &opts);
            let member_total: usize = probe.1.entries.iter().map(|e| e.members.len()).sum();
            let bytes = 4.0 * member_total as f64 * plen as f64;
            let mut reference: Option<Vec<Vec<f32>>> = None;

            for threads in [1usize, 4] {
                // Recycled output buffers: warm calls must not allocate
                // parameter-sized memory.
                let mut out: Vec<Vec<f32>> = Vec::new();
                fedgta::personalized_aggregate_into(&views, &opts, threads, &mut out);
                let (ns, _) = time_fn(
                    || {
                        fedgta::personalized_aggregate_into(&views, &opts, threads, &mut out);
                    },
                    grid.min_ns,
                    grid.max_calls,
                );
                let allocs = count_allocs(counter, || {
                    fedgta::personalized_aggregate_into(&views, &opts, threads, &mut out);
                });
                // Determinism contract: bit-identical at any thread count.
                match &reference {
                    None => reference = Some(out.clone()),
                    Some(want) => {
                        let same = want.iter().zip(&out).all(|(a, b)| {
                            a.len() == b.len()
                                && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                        });
                        assert!(
                            same,
                            "aggregate at n={n} plen={plen}: {threads}-thread output \
                             differs bitwise from 1-thread"
                        );
                        bit_identical &= same;
                    }
                }
                if (n, plen) == headline {
                    if threads == 1 {
                        headline_1t = ns;
                    } else {
                        headline_4t = ns;
                    }
                }
                results.push(AggregateResult {
                    participants: n,
                    plen,
                    threads,
                    ns_per_call: ns,
                    gbps: bytes / ns,
                    allocs_per_call: allocs,
                });
            }
        }
    }

    AggregateReport {
        mode: if quick { "quick" } else { "full" },
        cores: std::thread::available_parallelism().map_or(1, |c| c.get()),
        results,
        speedup_4v1: headline_1t / headline_4t,
        headline,
        bit_identical,
    }
}

/// Hand-rolled JSON (the vendored serde shim is a no-op, so the report
/// serializes itself). Floats route through [`crate::format::json_fixed`]
/// so a NaN cell (e.g. a timing ratio on a degenerate grid) renders as
/// `null` instead of breaking the parser.
pub fn to_json(r: &AggregateReport) -> String {
    use crate::format::{json_fixed, json_str};
    let mut s = String::with_capacity(2048);
    s.push_str("{\n");
    s.push_str(&format!("  \"mode\": {},\n", json_str(r.mode)));
    s.push_str(&format!("  \"cores\": {},\n", r.cores));
    s.push_str(&format!(
        "  \"headline\": {{\"participants\": {}, \"plen\": {}}},\n",
        r.headline.0, r.headline.1
    ));
    s.push_str(&format!("  \"speedup_4v1\": {},\n", json_fixed(r.speedup_4v1, 3)));
    s.push_str(&format!("  \"bit_identical\": {},\n", r.bit_identical));
    s.push_str("  \"results\": [\n");
    for (i, c) in r.results.iter().enumerate() {
        let allocs = match c.allocs_per_call {
            Some(a) => a.to_string(),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"participants\": {}, \"plen\": {}, \"threads\": {}, \
             \"ns_per_call\": {}, \"gbps\": {}, \"allocs_per_call\": {}}}{}\n",
            c.participants,
            c.plen,
            c.threads,
            json_fixed(c.ns_per_call, 0),
            json_fixed(c.gbps, 4),
            allocs,
            if i + 1 < r.results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Plain-text table for terminal output.
pub fn render_table(r: &AggregateReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "aggregate bench ({} mode, {} core{})\n",
        r.mode,
        r.cores,
        if r.cores == 1 { "" } else { "s" }
    ));
    s.push_str(&format!(
        "{:>12} {:>8} {:>8} {:>12} {:>8} {:>8}\n",
        "participants", "plen", "threads", "us/call", "GB/s", "allocs"
    ));
    for c in &r.results {
        let allocs = match c.allocs_per_call {
            Some(a) => a.to_string(),
            None => "-".to_string(),
        };
        s.push_str(&format!(
            "{:>12} {:>8} {:>8} {:>12.1} {:>8.3} {:>8}\n",
            c.participants,
            c.plen,
            c.threads,
            c.ns_per_call / 1_000.0,
            c.gbps,
            allocs
        ));
    }
    s.push_str(&format!(
        "4-thread vs 1-thread at n={} plen={}: {:.2}x (1 is expected on a \
         single-core host)\n",
        r.headline.0, r.headline.1, r.speedup_4v1
    ));
    s.push_str(&format!(
        "outputs bit-identical across thread counts: {}\n",
        r.bit_identical
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_produces_grid_and_valid_json() {
        let r = run(true, None);
        // 1 participants × 1 plen × 2 thread counts.
        assert_eq!(r.results.len(), 2);
        assert!(r.results.iter().all(|c| c.ns_per_call > 0.0 && c.gbps > 0.0));
        assert!(r.bit_identical);
        let json = to_json(&r);
        assert!(json.contains("\"speedup_4v1\""));
        assert!(json.contains("\"bit_identical\": true"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn alloc_counter_plumbs_through_to_every_cell() {
        fn frozen() -> u64 {
            0
        }
        let r = run(true, Some(frozen));
        for c in &r.results {
            assert_eq!(c.allocs_per_call, Some(0));
        }
    }
}
