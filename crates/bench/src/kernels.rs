//! Kernel microbenchmark suite: GFLOP/s and allocation counts for the
//! register-blocked dense kernels and the column-blocked SpMM.
//!
//! Two entry points consume this module:
//!
//! - the `kernels` bench binary (`cargo run --release -p fedgta-bench --bin
//!   kernels`), which installs a counting allocator and writes
//!   `BENCH_KERNELS.json`;
//! - `fedgta-cli bench kernels [--test ...]`, the runner subcommand (no
//!   allocator instrumentation — allocation counts are reported as `null`).
//!
//! The shape grid follows the training hot path: row counts `n ∈ {2k, 8k,
//! 32k}` (nodes per client subgraph) × feature widths `f ∈ {64, 128, 500}`
//! (hidden width … Cora-scale input width), with a 64-wide output. A
//! square `512³` head-to-head against the retained scalar kernels
//! (`fedgta_nn::ops::naive`) anchors the before/after comparison.
//! `--test` mode shrinks every shape and runs one iteration per cell so CI
//! can smoke the whole pipeline in under a second.

use fedgta_graph::spmm::spmm_into;
use fedgta_graph::{Csr, EdgeList};
use fedgta_nn::ops::{
    self, matmul_bias_relu_into, matmul_into, matmul_nt_into, matmul_tn_into,
};
use fedgta_nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Reads the process-wide allocation counter (monotone), when the host
/// binary installed one (see [`crate::alloc`]).
pub type AllocCounter = fn() -> u64;

/// One timed cell of the benchmark grid.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name (`matmul`, `matmul_tn`, `matmul_nt`, `matmul_bias_relu`,
    /// `spmm`).
    pub kernel: &'static str,
    /// `blocked` (this PR's kernels) or `naive` (retained seed scalars).
    pub variant: &'static str,
    /// Output rows / left rows.
    pub m: usize,
    /// Inner dimension (dense) or feature width (spmm).
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Throughput in GFLOP/s (`2·m·k·n` flops per dense call,
    /// `2·nnz·cols` per spmm call).
    pub gflops: f64,
    /// Wall time per call in nanoseconds.
    pub ns_per_call: f64,
    /// Heap allocations per `_into` call with pre-allocated buffers
    /// (`None` when the host binary has no counting allocator).
    pub allocs_per_call: Option<u64>,
}

/// The full report: grid results plus the naive-vs-blocked anchor.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// `"quick"` (`--test`) or `"full"`.
    pub mode: &'static str,
    /// Worker threads the kernels ran with (`FEDGTA_THREADS`).
    pub threads: usize,
    /// All timed cells, including the square anchor shapes.
    pub results: Vec<KernelResult>,
    /// `blocked GFLOP/s ÷ naive GFLOP/s` for `matmul` at the anchor shape.
    pub matmul_speedup_vs_naive: f64,
    /// Side length of the square anchor (`512` full, `96` quick).
    pub anchor_dim: usize,
    /// Cost of the compiled-in observability hook at `ObsLevel::Off`, as
    /// `(instrumented − raw) / raw · 100` on the anchor matmul. The
    /// determinism/overhead contract requires this ≤ 2%; negative values
    /// are timing noise (the hook is one relaxed atomic load).
    pub obs_overhead_pct: f64,
    /// Same measurement with the flight recorder armed (level still
    /// `Off`). The recorder records at span granularity — rounds and
    /// client phases, never per kernel op — so arming it must leave the
    /// per-op hook on the same ≤ 2% budget.
    pub recorder_overhead_pct: f64,
}

/// Times instrumented `matmul_into` against its uninstrumented `_raw`
/// twin at the anchor shape, returning the overhead percentage for two
/// configurations: observability forced to `Off`, and `Off` with the
/// flight recorder armed (the always-on black box a production run
/// flies with). Uses its own repetition budget so the numbers are
/// meaningful even in quick mode.
fn measure_obs_overhead(d: usize, rng: &mut StdRng) -> (f64, f64) {
    let saved = fedgta_obs::level();
    let rec_was_armed = fedgta_obs::recorder::armed();
    fedgta_obs::set_level(fedgta_obs::ObsLevel::Off);
    fedgta_obs::recorder::disarm();
    let a = filled(d, d, rng);
    let b = filled(d, d, rng);
    let mut out = vec![0f32; d * d];
    let (min_ns, max_calls) = (30_000_000u64, 400usize);
    let (ns_hooked, _) = time_fn(
        || matmul_into(a.view(), b.view(), &mut out),
        min_ns,
        max_calls,
    );
    fedgta_obs::recorder::arm_default();
    let (ns_recorder, _) = time_fn(
        || matmul_into(a.view(), b.view(), &mut out),
        min_ns,
        max_calls,
    );
    fedgta_obs::recorder::disarm();
    let (ns_raw, _) = time_fn(
        || ops::matmul_into_raw(a.view(), b.view(), &mut out),
        min_ns,
        max_calls,
    );
    if rec_was_armed {
        fedgta_obs::recorder::arm_default();
    }
    fedgta_obs::set_level(saved);
    (
        100.0 * (ns_hooked - ns_raw) / ns_raw,
        100.0 * (ns_recorder - ns_raw) / ns_raw,
    )
}

fn filled(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.random::<f32>() - 0.5).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Ring-lattice graph: node `i` links to `i±1..=i±5` (≈10 neighbors),
/// deterministic and degree-uniform — a stand-in for a client subgraph.
fn lattice(n: usize) -> Csr {
    let mut el = EdgeList::new(n);
    for i in 0..n as u32 {
        for d in 1..=5u32 {
            let j = (i + d) % n as u32;
            if i < j {
                el.push_undirected(i, j).expect("in range");
            }
        }
    }
    el.to_csr()
}

/// Times `f` (called repeatedly) and returns (ns/call, calls made).
/// Runs one warmup call, then batches until `min_ns` elapsed or `max_calls`.
/// Shared with the [`crate::aggregate`] suite.
pub(crate) fn time_fn(mut f: impl FnMut(), min_ns: u64, max_calls: usize) -> (f64, usize) {
    f(); // warmup (pulls operands into cache, faults pages)
    let start = Instant::now();
    let mut calls = 0usize;
    loop {
        f();
        calls += 1;
        let elapsed = start.elapsed().as_nanos() as u64;
        if elapsed >= min_ns || calls >= max_calls {
            return (elapsed as f64 / calls as f64, calls);
        }
    }
}

/// Allocations across one call of `f` (0 expected for `_into` kernels).
pub(crate) fn count_allocs(counter: Option<AllocCounter>, mut f: impl FnMut()) -> Option<u64> {
    counter.map(|c| {
        let before = c();
        f();
        c() - before
    })
}

struct Grid {
    rows: Vec<usize>,
    feats: Vec<usize>,
    out_cols: usize,
    anchor: usize,
    min_ns: u64,
    max_calls: usize,
}

impl Grid {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                rows: vec![256],
                feats: vec![32],
                out_cols: 16,
                anchor: 96,
                min_ns: 0,
                max_calls: 1,
            }
        } else {
            Self {
                rows: vec![2_000, 8_000, 32_000],
                feats: vec![64, 128, 500],
                out_cols: 64,
                anchor: 512,
                min_ns: 150_000_000,
                max_calls: 20,
            }
        }
    }
}

/// Runs the suite. `quick` is the CI `--test` mode; `counter` enables
/// allocation counting when the host binary installed [`crate::alloc`].
pub fn run(quick: bool, counter: Option<AllocCounter>) -> KernelReport {
    let grid = Grid::new(quick);
    let mut rng = StdRng::seed_from_u64(0x5eed_be4c);
    let mut results = Vec::new();

    // --- Dense grid: training-shaped operands -------------------------
    for &n_rows in &grid.rows {
        for &f_in in &grid.feats {
            let h = grid.out_cols;
            let x = filled(n_rows, f_in, &mut rng); // features / propagated
            let w = filled(f_in, h, &mut rng); // weights
            let dy = filled(n_rows, h, &mut rng); // output gradient
            let bias = vec![0.01f32; h];
            let mut out_fwd = vec![0f32; n_rows * h];
            let mut out_dw = vec![0f32; f_in * h];
            let mut out_dx = vec![0f32; n_rows * f_in];
            let flops_fwd = 2.0 * n_rows as f64 * f_in as f64 * h as f64;

            // matmul: Z = X · W
            let (ns, _) = time_fn(
                || matmul_into(x.view(), w.view(), &mut out_fwd),
                grid.min_ns,
                grid.max_calls,
            );
            let allocs =
                count_allocs(counter, || matmul_into(x.view(), w.view(), &mut out_fwd));
            results.push(KernelResult {
                kernel: "matmul",
                variant: "blocked",
                m: n_rows,
                k: f_in,
                n: h,
                gflops: flops_fwd / ns,
                ns_per_call: ns,
                allocs_per_call: allocs,
            });

            // fused epilogue: Z = relu(X · W + b)
            let (ns, _) = time_fn(
                || matmul_bias_relu_into(x.view(), w.view(), &bias, &mut out_fwd),
                grid.min_ns,
                grid.max_calls,
            );
            let allocs = count_allocs(counter, || {
                matmul_bias_relu_into(x.view(), w.view(), &bias, &mut out_fwd)
            });
            results.push(KernelResult {
                kernel: "matmul_bias_relu",
                variant: "blocked",
                m: n_rows,
                k: f_in,
                n: h,
                gflops: flops_fwd / ns,
                ns_per_call: ns,
                allocs_per_call: allocs,
            });

            // matmul_tn: dW = Xᵀ · dY
            let (ns, _) = time_fn(
                || matmul_tn_into(x.view(), dy.view(), &mut out_dw),
                grid.min_ns,
                grid.max_calls,
            );
            let allocs =
                count_allocs(counter, || matmul_tn_into(x.view(), dy.view(), &mut out_dw));
            results.push(KernelResult {
                kernel: "matmul_tn",
                variant: "blocked",
                m: n_rows,
                k: f_in,
                n: h,
                gflops: flops_fwd / ns,
                ns_per_call: ns,
                allocs_per_call: allocs,
            });

            // matmul_nt: dX = dY · Wᵀ
            let (ns, _) = time_fn(
                || matmul_nt_into(dy.view(), w.view(), &mut out_dx),
                grid.min_ns,
                grid.max_calls,
            );
            let allocs =
                count_allocs(counter, || matmul_nt_into(dy.view(), w.view(), &mut out_dx));
            results.push(KernelResult {
                kernel: "matmul_nt",
                variant: "blocked",
                m: n_rows,
                k: f_in,
                n: h,
                gflops: flops_fwd / ns,
                ns_per_call: ns,
                allocs_per_call: allocs,
            });

            // spmm: Y = A · X over the ring lattice (≈10 nnz/row)
            let a = lattice(n_rows);
            let nnz = a.num_edges();
            let mut y = vec![0f32; n_rows * f_in];
            let spmm_flops = 2.0 * nnz as f64 * f_in as f64;
            let (ns, _) = time_fn(
                || spmm_into(&a, x.as_slice(), f_in, &mut y),
                grid.min_ns,
                grid.max_calls,
            );
            let allocs = count_allocs(counter, || spmm_into(&a, x.as_slice(), f_in, &mut y));
            results.push(KernelResult {
                kernel: "spmm",
                variant: "blocked",
                m: n_rows,
                k: f_in,
                n: f_in,
                gflops: spmm_flops / ns,
                ns_per_call: ns,
                allocs_per_call: allocs,
            });
        }
    }

    // --- Square anchor: blocked vs retained naive scalars -------------
    let d = grid.anchor;
    let a = filled(d, d, &mut rng);
    let b = filled(d, d, &mut rng);
    let mut out = vec![0f32; d * d];
    let flops = 2.0 * (d as f64).powi(3);
    let (ns_blocked, _) = time_fn(
        || matmul_into(a.view(), b.view(), &mut out),
        grid.min_ns,
        grid.max_calls,
    );
    let blocked_gflops = flops / ns_blocked;
    results.push(KernelResult {
        kernel: "matmul",
        variant: "blocked",
        m: d,
        k: d,
        n: d,
        gflops: blocked_gflops,
        ns_per_call: ns_blocked,
        allocs_per_call: count_allocs(counter, || {
            matmul_into(a.view(), b.view(), &mut out)
        }),
    });
    let (ns_naive, _) = time_fn(
        || {
            std::hint::black_box(ops::naive::matmul(&a, &b));
        },
        grid.min_ns,
        grid.max_calls,
    );
    let naive_gflops = flops / ns_naive;
    results.push(KernelResult {
        kernel: "matmul",
        variant: "naive",
        m: d,
        k: d,
        n: d,
        gflops: naive_gflops,
        ns_per_call: ns_naive,
        allocs_per_call: None,
    });

    let (obs_overhead_pct, recorder_overhead_pct) = measure_obs_overhead(d, &mut rng);

    KernelReport {
        mode: if quick { "quick" } else { "full" },
        threads: fedgta_graph::par::num_threads(),
        results,
        matmul_speedup_vs_naive: blocked_gflops / naive_gflops,
        anchor_dim: d,
        obs_overhead_pct,
        recorder_overhead_pct,
    }
}

/// Hand-rolled JSON (the vendored serde shim is a no-op, so the report
/// serializes itself). Strings go through [`crate::format::json_str`] and
/// floats through [`crate::format::json_fixed`] so hostile names and
/// NaN/Inf cells cannot break the artifact.
pub fn to_json(r: &KernelReport) -> String {
    use crate::format::{json_fixed, json_str};
    let mut s = String::with_capacity(4096);
    s.push_str("{\n");
    s.push_str(&format!("  \"mode\": {},\n", json_str(r.mode)));
    s.push_str(&format!("  \"threads\": {},\n", r.threads));
    s.push_str(&format!("  \"anchor_dim\": {},\n", r.anchor_dim));
    s.push_str(&format!(
        "  \"matmul_speedup_vs_naive\": {},\n",
        json_fixed(r.matmul_speedup_vs_naive, 3)
    ));
    s.push_str(&format!(
        "  \"obs_overhead_pct\": {},\n",
        json_fixed(r.obs_overhead_pct, 3)
    ));
    s.push_str(&format!(
        "  \"recorder_overhead_pct\": {},\n",
        json_fixed(r.recorder_overhead_pct, 3)
    ));
    s.push_str("  \"results\": [\n");
    for (i, k) in r.results.iter().enumerate() {
        let allocs = match k.allocs_per_call {
            Some(a) => a.to_string(),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\"kernel\": {}, \"variant\": {}, \"m\": {}, \"k\": {}, \"n\": {}, \
             \"gflops\": {}, \"ns_per_call\": {}, \"allocs_per_call\": {}}}{}\n",
            json_str(k.kernel),
            json_str(k.variant),
            k.m,
            k.k,
            k.n,
            json_fixed(k.gflops, 4),
            json_fixed(k.ns_per_call, 0),
            allocs,
            if i + 1 < r.results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Plain-text table for terminal output.
pub fn render_table(r: &KernelReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "kernel bench ({} mode, {} thread{})\n",
        r.mode,
        r.threads,
        if r.threads == 1 { "" } else { "s" }
    ));
    s.push_str(&format!(
        "{:<18} {:>8} {:>7} {:>6} {:>6} {:>10} {:>8}\n",
        "kernel", "variant", "m", "k", "n", "GFLOP/s", "allocs"
    ));
    for k in &r.results {
        let allocs = match k.allocs_per_call {
            Some(a) => a.to_string(),
            None => "-".to_string(),
        };
        s.push_str(&format!(
            "{:<18} {:>8} {:>7} {:>6} {:>6} {:>10.3} {:>8}\n",
            k.kernel, k.variant, k.m, k.k, k.n, k.gflops, allocs
        ));
    }
    s.push_str(&format!(
        "matmul blocked vs naive at {0}x{0}x{0}: {1:.2}x\n",
        r.anchor_dim, r.matmul_speedup_vs_naive
    ));
    s.push_str(&format!(
        "observability hook overhead at ObsLevel::Off: {:+.2}% (budget 2%)\n",
        r.obs_overhead_pct
    ));
    s.push_str(&format!(
        "observability hook overhead with flight recorder armed: {:+.2}% (budget 2%)\n",
        r.recorder_overhead_pct
    ));
    s
}

/// Compares a fresh report against a `BENCH_KERNELS.json` baseline:
/// returns an error naming the anchor regression when the blocked anchor
/// matmul lost more than `tolerance_pct` GFLOP/s, `Ok(None)` when the
/// baseline has no comparable anchor cell.
pub fn check_against_baseline(
    report: &KernelReport,
    baseline_json: &str,
    tolerance_pct: f64,
) -> Result<Option<f64>, String> {
    // Each result row in our hand-rolled JSON is one flat object per line.
    let mut baseline_anchor: Option<f64> = None;
    for line in baseline_json.lines() {
        let t = line.trim().trim_end_matches(',');
        if !t.starts_with("{\"kernel\"") {
            continue;
        }
        let obj = fedgta_obs::parse_flat_object(t)?;
        let get_s = |k: &str| obj.get(k).and_then(|v| v.as_str().map(str::to_string));
        let get_n = |k: &str| obj.get(k).and_then(|v| v.as_u64());
        if get_s("kernel").as_deref() == Some("matmul")
            && get_s("variant").as_deref() == Some("blocked")
            && get_n("m") == Some(report.anchor_dim as u64)
            && get_n("k") == Some(report.anchor_dim as u64)
            && get_n("n") == Some(report.anchor_dim as u64)
        {
            // gflops is a float; the flat parser keeps numbers as f64 text
            // fallback — re-parse from the raw line for robustness.
            if let Some(pos) = t.find("\"gflops\":") {
                let rest = &t[pos + 9..];
                let end = rest.find(',').unwrap_or(rest.len());
                if let Ok(v) = rest[..end].trim().parse::<f64>() {
                    baseline_anchor = Some(v);
                }
            }
        }
    }
    let Some(base) = baseline_anchor else {
        return Ok(None);
    };
    let now = report
        .results
        .iter()
        .find(|c| {
            c.kernel == "matmul"
                && c.variant == "blocked"
                && c.m == report.anchor_dim
                && c.k == report.anchor_dim
                && c.n == report.anchor_dim
        })
        .map(|c| c.gflops)
        .ok_or("report has no anchor matmul cell")?;
    let regression_pct = 100.0 * (base - now) / base;
    if regression_pct > tolerance_pct {
        return Err(format!(
            "anchor matmul regressed {regression_pct:.2}% vs baseline \
             ({base:.2} → {now:.2} GFLOP/s, budget {tolerance_pct}%)"
        ));
    }
    Ok(Some(regression_pct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_produces_full_grid_and_valid_json() {
        let r = run(true, None);
        // 1 row x 1 feat x 5 kernels + 2 anchor rows.
        assert_eq!(r.results.len(), 7);
        assert!(r.results.iter().all(|k| k.gflops > 0.0));
        let json = to_json(&r);
        assert!(json.contains("\"matmul_speedup_vs_naive\""));
        assert!(json.contains("\"variant\": \"naive\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn alloc_counter_reports_zero_for_into_kernels() {
        // With a fake counter that never moves, every cell reports 0.
        fn frozen() -> u64 {
            0
        }
        let r = run(true, Some(frozen));
        for k in r.results.iter().filter(|k| k.variant == "blocked") {
            assert_eq!(k.allocs_per_call, Some(0), "{} allocated", k.kernel);
        }
    }
}
