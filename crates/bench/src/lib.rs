//! # fedgta-bench — shared experiment runner
//!
//! Every table/figure binary (`src/bin/table*.rs`, `src/bin/fig*.rs`)
//! builds on this runner: it loads a synthetic benchmark, partitions it
//! with Louvain or Metis, constructs the federation, runs a strategy for
//! `R` rounds over `runs` seeds, and reports `mean ± std` best test
//! accuracy — the exact protocol behind the paper's tables.

pub mod aggregate;
pub mod alloc;
pub mod comms;
pub mod format;
pub mod kernels;
pub mod plot;
pub mod runner;
pub mod scale;

pub use format::{fmt_pm, Table};
pub use plot::{render_chart, Series};
pub use runner::{
    make_strategy, partition_benchmark, run_experiment, run_global, ExperimentResult,
    ExperimentSpec, SplitKind, STRATEGY_NAMES,
};

/// Parses the common `--quick` (default) / `--full` flag from argv.
pub fn is_full_run() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Parses `--flag value` style overrides from argv.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}
