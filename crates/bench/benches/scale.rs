//! Criterion benchmarks of the decoupled-model precompute pipelines —
//! the Table 1 client-side scalability story: the `O(kmf)` propagation
//! dominates and is training-independent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedgta_data::{generate_from_spec, DatasetSpec, Task};
use fedgta_nn::models::precompute::{precompute, PrecomputeKind};
use fedgta_nn::models::GraphDataset;
use std::hint::black_box;

fn dataset(n: usize, f: usize) -> GraphDataset {
    let spec = DatasetSpec {
        name: "scale",
        nodes: n,
        features: f,
        classes: 8,
        avg_degree: 10.0,
        train_frac: 0.5,
        val_frac: 0.2,
        test_frac: 0.3,
        task: Task::Transductive,
        blocks_per_class: 2,
        homophily: 0.8,
        description: "bench",
    };
    generate_from_spec(&spec, 0).to_dataset()
}

fn bench_precompute_vs_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("precompute_sgc_vs_n");
    for n in [2000usize, 8000, 20000] {
        let d = dataset(n, 32);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(precompute(PrecomputeKind::Sgc, &d.adj_norm, &d.features, 3)));
        });
    }
    g.finish();
}

fn bench_precompute_vs_k(c: &mut Criterion) {
    let d = dataset(8000, 32);
    let mut g = c.benchmark_group("precompute_sgc_vs_k");
    for k in [1usize, 3, 6, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(precompute(PrecomputeKind::Sgc, &d.adj_norm, &d.features, k)));
        });
    }
    g.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let d = dataset(8000, 32);
    let mut g = c.benchmark_group("precompute_pipelines_8k_k3");
    for (name, kind) in [
        ("sgc", PrecomputeKind::Sgc),
        ("sign", PrecomputeKind::Sign),
        ("s2gc", PrecomputeKind::S2gc),
        ("gbp", PrecomputeKind::Gbp { beta: 0.5 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(precompute(kind, &d.adj_norm, &d.features, 3)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_precompute_vs_n, bench_precompute_vs_k, bench_pipelines
}
criterion_main!(benches);
