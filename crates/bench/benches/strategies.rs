//! Criterion benchmarks of server-side aggregation cost vs the number of
//! participants — the Fig. 5 / Table 1 server-side story: FedAvg's single
//! average is O(N·P); FedGTA's personalized pass is O(N²·sketch + N²·P);
//! GCFL+'s pairwise DTW grows with N² · T² — plus the client-parallel
//! round-scaling story: one full federated round at 1/2/4 worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedgta::aggregate::{personalized_aggregate, AggregateOptions, ClientUpload};
use fedgta::{FedGta, SimilarityKind};
use fedgta_fed::strategies::gcfl::dtw_distance;
use fedgta_fed::strategies::test_support::federation_with;
use fedgta_fed::strategies::{weighted_average, FedAvg, RoundCtx, Strategy};
use fedgta_nn::models::ModelKind;
use std::hint::black_box;

const PARAM_LEN: usize = 8 * 1024;
const SKETCH_LEN: usize = 5 * 3 * 8;

fn make_params(n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| (0..PARAM_LEN).map(|j| ((i * 31 + j) % 101) as f32 / 101.0).collect())
        .collect()
}

fn make_sketches(n: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| (0..SKETCH_LEN).map(|j| ((i * 7 + j) % 13) as f32 / 13.0).collect())
        .collect()
}

fn bench_fedavg_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_fedavg_average");
    for n in [10usize, 50, 200] {
        let params = make_params(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ups: Vec<(Vec<f32>, f64)> =
                    params.iter().map(|p| (p.clone(), 1.0)).collect();
                black_box(weighted_average(&ups))
            });
        });
    }
    g.finish();
}

fn bench_fedgta_aggregate(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_fedgta_personalized");
    for n in [10usize, 50, 200] {
        let params = make_params(n);
        let sketches = make_sketches(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ups: Vec<ClientUpload<'_>> = (0..n)
                    .map(|i| ClientUpload {
                        params: &params[i],
                        confidence: 1.0 + i as f64,
                        moments: &sketches[i],
                        n_train: 10,
                    })
                    .collect();
                black_box(personalized_aggregate(
                    &ups,
                    &AggregateOptions {
                        epsilon: 0.5,
                        epsilon_quantile: None,
                        similarity: SimilarityKind::Cosine,
                        use_moments: true,
                        use_confidence: true,
                    },
                ))
            });
        });
    }
    g.finish();
}

fn bench_gcfl_dtw(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_gcfl_dtw_pairwise");
    for n in [10usize, 30] {
        // Window-5 sequences of 32-dim signatures.
        let seqs: Vec<Vec<Vec<f32>>> = (0..n)
            .map(|i| {
                (0..5)
                    .map(|t| (0..32).map(|j| ((i + t * 3 + j) % 17) as f32 / 17.0).collect())
                    .collect()
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0f64;
                for a in 0..n {
                    for bb in (a + 1)..n {
                        total += dtw_distance(&seqs[a], &seqs[bb]);
                    }
                }
                black_box(total)
            });
        });
    }
    g.finish();
}

/// One full federated round (local training + aggregation) on a 12-client
/// federation, swept over the worker-thread count. By the determinism
/// contract all three counts produce bit-identical models — this group
/// measures the *only* thing that is allowed to change: wall clock. The
/// client-parallel executor should give near-linear speedup while clients
/// outnumber workers.
fn bench_round_thread_scaling(c: &mut Criterion) {
    for (label, make) in [
        ("round_threads_fedavg_gcn", {
            fn f() -> Box<dyn Strategy> {
                Box::new(FedAvg::new())
            }
            f as fn() -> Box<dyn Strategy>
        }),
        ("round_threads_fedgta_gcn", {
            fn f() -> Box<dyn Strategy> {
                Box::new(FedGta::with_defaults())
            }
            f
        }),
    ] {
        let mut g = c.benchmark_group(label);
        for threads in [1usize, 2, 4] {
            // Fresh federation per thread count so every cell measures the
            // same round-1 workload.
            let mut clients = federation_with(ModelKind::Gcn, 7, 12, 2400);
            let mut strategy = make();
            let participants: Vec<usize> = (0..clients.len()).collect();
            let ctx = RoundCtx::with_threads(3, threads);
            g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
                b.iter(|| black_box(strategy.round(&mut clients, &participants, &ctx)));
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fedavg_aggregate, bench_fedgta_aggregate, bench_gcfl_dtw,
        bench_round_thread_scaling
}
criterion_main!(benches);
