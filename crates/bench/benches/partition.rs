//! Criterion benchmarks of the federated split simulators (Louvain and
//! the Metis-style multilevel partitioner) as the global graph grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedgta_data::{generate_sbm, SbmConfig};
use fedgta_graph::Csr;
use fedgta_partition::{communities_to_clients, louvain, metis_kway, LouvainConfig, MetisConfig};
use std::hint::black_box;

fn graph(n: usize) -> Csr {
    generate_sbm(&SbmConfig::with_homophily(n, 8, 3, 10.0, 0.8, 0)).graph
}

fn bench_louvain(c: &mut Criterion) {
    let mut g = c.benchmark_group("louvain");
    for n in [2000usize, 8000, 20000] {
        let gr = graph(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(louvain(&gr, &LouvainConfig::default())));
        });
    }
    g.finish();
}

fn bench_metis(c: &mut Criterion) {
    let mut g = c.benchmark_group("metis_kway_10");
    for n in [2000usize, 8000, 20000] {
        let gr = graph(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(metis_kway(&gr, 10, &MetisConfig::default()).unwrap()));
        });
    }
    g.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let gr = graph(20000);
    let comm = louvain(&gr, &LouvainConfig::default());
    c.bench_function("communities_to_clients_20k", |b| {
        b.iter(|| black_box(communities_to_clients(&comm, 10).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_louvain, bench_metis, bench_assignment
}
criterion_main!(benches);
