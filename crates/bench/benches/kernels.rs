//! Criterion micro-benchmarks of the register-blocked kernels against the
//! retained naive scalars, at MLP-head and GCN-layer shapes.
//!
//! The authoritative GFLOP/s numbers come from the `kernels` bench binary
//! (which also counts allocations); this harness keeps the same kernels
//! visible in `cargo bench` alongside the other component benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedgta_graph::spmm::spmm_into;
use fedgta_graph::EdgeList;
use fedgta_nn::ops::{self, matmul_bias_relu_into, matmul_into, matmul_nt_into, matmul_tn_into};
use fedgta_nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn filled(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.random::<f32>() - 0.5).collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_matmul_family(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut g = c.benchmark_group("matmul_blocked");
    for n in [2000usize, 8000] {
        let (f, h) = (128usize, 64usize);
        let x = filled(n, f, &mut rng);
        let w = filled(f, h, &mut rng);
        let dy = filled(n, h, &mut rng);
        let bias = vec![0.01f32; h];
        let mut fwd = vec![0f32; n * h];
        let mut dw = vec![0f32; f * h];
        let mut dx = vec![0f32; n * f];
        g.bench_with_input(BenchmarkId::new("matmul", n), &n, |b, _| {
            b.iter(|| matmul_into(x.view(), w.view(), black_box(&mut fwd)));
        });
        g.bench_with_input(BenchmarkId::new("fused_bias_relu", n), &n, |b, _| {
            b.iter(|| matmul_bias_relu_into(x.view(), w.view(), &bias, black_box(&mut fwd)));
        });
        g.bench_with_input(BenchmarkId::new("matmul_tn", n), &n, |b, _| {
            b.iter(|| matmul_tn_into(x.view(), dy.view(), black_box(&mut dw)));
        });
        g.bench_with_input(BenchmarkId::new("matmul_nt", n), &n, |b, _| {
            b.iter(|| matmul_nt_into(dy.view(), w.view(), black_box(&mut dx)));
        });
    }
    g.finish();
}

fn bench_blocked_vs_naive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let d = 256usize;
    let a = filled(d, d, &mut rng);
    let b2 = filled(d, d, &mut rng);
    let mut out = vec![0f32; d * d];
    let mut g = c.benchmark_group("matmul_256_cubed");
    g.bench_function("blocked", |b| {
        b.iter(|| matmul_into(a.view(), b2.view(), black_box(&mut out)));
    });
    g.bench_function("naive", |b| {
        b.iter(|| black_box(ops::naive::matmul(&a, &b2)));
    });
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let n = 8000usize;
    let mut el = EdgeList::new(n);
    for i in 0..n as u32 {
        for d in 1..=5u32 {
            let j = (i + d) % n as u32;
            if i < j {
                el.push_undirected(i, j).unwrap();
            }
        }
    }
    let a = el.to_csr();
    let mut g = c.benchmark_group("spmm_blocked_8k");
    for cols in [64usize, 500] {
        let x = filled(n, cols, &mut rng);
        let mut y = vec![0f32; n * cols];
        g.bench_with_input(BenchmarkId::from_parameter(cols), &cols, |b, &cols| {
            b.iter(|| spmm_into(&a, x.as_slice(), cols, black_box(&mut y)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul_family, bench_blocked_vs_naive, bench_spmm);
criterion_main!(benches);
