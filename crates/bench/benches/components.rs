//! Criterion micro-benchmarks of FedGTA's client-side components:
//! label propagation, smoothing confidence, mixed moments, similarity —
//! plus the underlying SpMM and normalization kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedgta::{
    label_propagation, local_smoothing_confidence, mixed_moments, moment_similarity, MomentKind,
    SimilarityKind,
};
use fedgta_data::{generate_from_spec, DatasetSpec, Task};
use fedgta_graph::{normalized_adjacency, NormKind};
use fedgta_nn::models::GraphDataset;
use fedgta_nn::Matrix;
use std::hint::black_box;

fn dataset(n: usize, c: usize) -> GraphDataset {
    let spec = DatasetSpec {
        name: "bench",
        nodes: n,
        features: 32,
        classes: c,
        avg_degree: 10.0,
        train_frac: 0.5,
        val_frac: 0.2,
        test_frac: 0.3,
        task: Task::Transductive,
        blocks_per_class: 2,
        homophily: 0.8,
        description: "bench",
    };
    generate_from_spec(&spec, 0).to_dataset()
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("label_propagation");
    for n in [1000usize, 8000] {
        let data = dataset(n, 8);
        let soft = Matrix::from_vec(n, 8, vec![0.125; n * 8]);
        g.bench_with_input(BenchmarkId::new("k5", n), &n, |b, _| {
            b.iter(|| black_box(label_propagation(&data.adj_norm, &soft, 5, 0.5)));
        });
    }
    // Depth ablation (DESIGN.md §5): cost is linear in k.
    let data = dataset(4000, 8);
    let soft = Matrix::from_vec(4000, 8, vec![0.125; 4000 * 8]);
    for k in [1usize, 3, 5, 10] {
        g.bench_with_input(BenchmarkId::new("depth", k), &k, |b, &k| {
            b.iter(|| black_box(label_propagation(&data.adj_norm, &soft, k, 0.5)));
        });
    }
    g.finish();
}

fn bench_confidence_and_moments(c: &mut Criterion) {
    let n = 8000;
    let data = dataset(n, 8);
    let soft = Matrix::from_vec(n, 8, vec![0.125; n * 8]);
    let steps = label_propagation(&data.adj_norm, &soft, 5, 0.5);
    c.bench_function("smoothing_confidence_8k", |b| {
        b.iter(|| black_box(local_smoothing_confidence(steps.last().unwrap(), &data.degrees_hat)));
    });
    let mut g = c.benchmark_group("mixed_moments");
    for order in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("order", order), &order, |b, &o| {
            b.iter(|| black_box(mixed_moments(&steps, o, MomentKind::Central)));
        });
    }
    g.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let a: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
    let b2: Vec<f32> = (0..1000).map(|i| (i as f32).cos()).collect();
    c.bench_function("moment_similarity_cosine_1k", |b| {
        b.iter(|| black_box(moment_similarity(&a, &b2, SimilarityKind::Cosine)));
    });
}

fn bench_kernels(c: &mut Criterion) {
    let data = dataset(8000, 8);
    let x = Matrix::from_vec(8000, 32, vec![0.1; 8000 * 32]);
    c.bench_function("spmm_8k_f32", |b| {
        b.iter(|| black_box(fedgta_nn::ops::spmm_csr(&data.adj_norm, &x)));
    });
    let bench = generate_from_spec(
        &DatasetSpec {
            name: "norm",
            nodes: 8000,
            features: 8,
            classes: 4,
            avg_degree: 10.0,
            train_frac: 0.3,
            val_frac: 0.3,
            test_frac: 0.4,
            task: Task::Transductive,
            blocks_per_class: 2,
            homophily: 0.8,
            description: "bench",
        },
        0,
    );
    c.bench_function("sym_normalization_8k", |b| {
        b.iter(|| black_box(normalized_adjacency(&bench.graph, NormKind::Symmetric)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lp, bench_confidence_and_moments, bench_similarity, bench_kernels
}
criterion_main!(benches);
