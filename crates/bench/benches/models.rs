//! Criterion benchmarks of the seven backbones: one local training epoch
//! and one full inference on an 8k-node client-scale graph — the
//! per-client cost column of the paper's Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedgta_data::{generate_from_spec, DatasetSpec, Task};
use fedgta_nn::models::{build_model, GraphDataset, ModelConfig, ModelKind};
use fedgta_nn::{Adam, TrainHooks};
use std::hint::black_box;

fn dataset() -> GraphDataset {
    let spec = DatasetSpec {
        name: "bench",
        nodes: 8000,
        features: 64,
        classes: 8,
        avg_degree: 10.0,
        train_frac: 0.5,
        val_frac: 0.2,
        test_frac: 0.3,
        task: Task::Transductive,
        blocks_per_class: 2,
        homophily: 0.8,
        description: "bench",
    };
    generate_from_spec(&spec, 0).to_dataset()
}

fn cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        hidden: 64,
        layers: if kind == ModelKind::Sgc { 1 } else { 2 },
        k: 5,
        beta: 0.15,
        batch_size: 256,
        seed: 0,
        ..ModelConfig::default()
    }
}

fn bench_train_epoch(c: &mut Criterion) {
    let data = dataset();
    let mut g = c.benchmark_group("train_epoch_8k");
    for kind in ModelKind::all() {
        let mut model = build_model(&cfg(kind), data.num_features(), data.num_classes);
        let mut opt = Adam::new(0.01, 0.0);
        // Warm the decoupled precompute caches outside the timed region.
        let _ = model.predict(&data);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| {
                black_box(model.train_epoch(&data, &mut opt, &mut TrainHooks::none()))
            });
        });
    }
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let data = dataset();
    let mut g = c.benchmark_group("inference_8k");
    for kind in ModelKind::all() {
        let mut model = build_model(&cfg(kind), data.num_features(), data.num_classes);
        let _ = model.predict(&data); // warm caches
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| black_box(model.predict(&data)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_epoch, bench_inference
}
criterion_main!(benches);
