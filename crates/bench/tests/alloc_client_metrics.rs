//! Allocation-budget test for FedGTA's Algorithm-1 upload path: once a
//! client's persistent [`fedgta::UploadScratch`] is warm, every
//! `FedGta::client_metrics` call — softmax prediction, k-step label
//! propagation, smoothing confidence, mixed moments, and (when enabled)
//! the cached feature-moment extension — performs **zero** heap
//! allocations.
//!
//! Lives in `fedgta-bench` (not `fedgta`) because the counting allocator
//! building blocks are here and `fedgta` cannot depend back on `bench`.
//! Kept to a single `#[test]` fn: `#[global_allocator]` is per-binary and
//! the test pins `FEDGTA_THREADS=1` (process-global env) so the parallel
//! helpers run inline instead of spawning scoped worker threads, whose
//! stacks would otherwise count against the budget.

use fedgta::{FeatureMomentConfig, FedGta, FedGtaConfig};
use fedgta_bench::alloc::{alloc_count, CountingAlloc};
use fedgta_fed::strategies::test_support::small_federation;
use fedgta_graph::par::refresh_thread_env;
use fedgta_nn::models::ModelKind;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warm_client_metrics_performs_zero_heap_allocations() {
    // Inline execution: worker threads would allocate stacks/channels.
    std::env::set_var("FEDGTA_THREADS", "1");
    refresh_thread_env();

    let mut clients = small_federation(ModelKind::Sgc, 7);

    // Paper-default config, then the feature-moment extension — the
    // latter exercises the round-invariant sketch cache as well.
    let configs = [
        FedGtaConfig::default(),
        FedGtaConfig {
            feature_moments: Some(FeatureMomentConfig {
                dims: 4,
                weight: 0.5,
            }),
            ..FedGtaConfig::default()
        },
    ];

    for (ci, cfg) in configs.into_iter().enumerate() {
        let strat = FedGta::new(cfg);
        let client = &mut clients[ci % 2];
        // Cold call: builds the scratch (soft-label matrix, LP steps,
        // accumulators, sketch, feature cache). Second call settles any
        // capacity growth (the sketch's feature-extension tail).
        let (h0, m0) = strat.client_metrics(client);
        let (h0, m0) = (h0, m0.to_vec());
        strat.client_metrics(client);

        for call in 0..3 {
            let before = alloc_count();
            let (h, m) = strat.client_metrics(client);
            let allocs = alloc_count() - before;
            // Warm calls are deterministic replays of the cold call…
            assert_eq!(h.to_bits(), h0.to_bits(), "config {ci}: H drifted");
            assert_eq!(m.len(), m0.len(), "config {ci}: sketch length drifted");
            assert!(
                m.iter().zip(&m0).all(|(a, b)| a.to_bits() == b.to_bits()),
                "config {ci}: sketch drifted bitwise"
            );
            // …and allocation-free.
            assert_eq!(
                allocs, 0,
                "config {ci} warm call {call}: {allocs} heap allocations \
                 (budget 0); a scratch buffer is being reallocated"
            );
        }
    }

    std::env::remove_var("FEDGTA_THREADS");
    refresh_thread_env();
}
