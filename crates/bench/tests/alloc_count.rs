//! Allocation-budget test: one MLP training epoch through a warm
//! [`Workspace`] performs O(1) heap allocations — a small constant that
//! does not grow with batch size, layer width, or epoch count — and the
//! `_into` kernels themselves perform exactly zero.
//!
//! Lives in `fedgta-bench` (not `fedgta-nn`) because the counting
//! allocator building blocks are here and `nn` cannot depend back on
//! `bench`. Kept to a single `#[test]` fn: `#[global_allocator]` is
//! per-binary and the test pins `FEDGTA_THREADS=1` (process-global env)
//! so the parallel helpers run inline instead of spawning scoped worker
//! threads, whose stacks would otherwise count against the budget.

use fedgta_bench::alloc::{alloc_count, CountingAlloc};
use fedgta_graph::par::refresh_thread_env;
use fedgta_nn::loss::softmax_ce;
use fedgta_nn::ops::{matmul_bias_relu_into, matmul_into, matmul_nt_into, matmul_tn_into};
use fedgta_nn::optim::Optimizer;
use fedgta_nn::{Adam, Matrix, Mlp, Workspace};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn gen(r: usize, c: usize, seed: u64) -> Matrix {
    Matrix::from_vec(
        r,
        c,
        (0..r * c)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 7919) % 97) as f32
                    / 48.5)
                    - 1.0
            })
            .collect(),
    )
}

/// One full supervised epoch: forward (train mode, dropout), hard-label
/// CE, backward, Adam step, then return every buffer to the pool.
fn epoch(
    mlp: &mut Mlp,
    x: &Matrix,
    labels: &[u32],
    rows: &[u32],
    opt: &mut Adam,
    ws: &mut Workspace,
) -> f32 {
    let (logits, cache) = mlp.forward_ws(x, true, ws);
    let (loss, d_logits) = softmax_ce(&logits, labels, rows);
    let (grads, dx) = mlp.backward_ws(&cache, &d_logits, None, ws);
    opt.step(mlp.params_mut(), &grads);
    ws.give(grads);
    ws.give_matrix(dx);
    ws.give_matrix(d_logits);
    ws.give_matrix(logits);
    cache.recycle(ws);
    loss
}

#[test]
fn mlp_epoch_is_o1_allocations_and_kernels_are_zero() {
    // Inline execution: worker threads would allocate stacks/channels.
    std::env::set_var("FEDGTA_THREADS", "1");
    refresh_thread_env();

    let n = 128;
    let x = gen(n, 32, 1);
    let labels: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
    let train_rows: Vec<u32> = (0..n as u32).filter(|i| i % 3 == 0).collect();
    let mut mlp = Mlp::new(&[32, 64, 7], 0.5, 42);
    let mut opt = Adam::new(1e-2, 5e-4);
    let mut ws = Workspace::new();

    // Two warmup epochs: the first populates the workspace pool and
    // Adam's moment buffers; the second settles best-fit reuse.
    let l0 = epoch(&mut mlp, &x, &labels, &train_rows, &mut opt, &mut ws);
    epoch(&mut mlp, &x, &labels, &train_rows, &mut opt, &mut ws);

    // Steady state: each epoch pays only the loss layer's fresh gradient
    // matrix, the softmax probability copy, and the two small pointer
    // `Vec`s holding the forward cache — 4 allocations, a constant
    // independent of batch size, width, and epoch count. Every f32
    // buffer on the MLP path proper (activations, dropout masks, grads,
    // dx) must come from the pool.
    const EPOCH_BUDGET: u64 = 8;
    let mut per_epoch = Vec::new();
    for _ in 0..3 {
        let before = alloc_count();
        let loss = epoch(&mut mlp, &x, &labels, &train_rows, &mut opt, &mut ws);
        per_epoch.push(alloc_count() - before);
        assert!(loss.is_finite());
    }
    eprintln!("per-epoch heap allocations: {per_epoch:?}");
    for (e, &count) in per_epoch.iter().enumerate() {
        assert!(
            count <= EPOCH_BUDGET,
            "epoch {e}: {count} heap allocations (budget {EPOCH_BUDGET}); \
             the workspace pool is leaking buffers"
        );
    }
    assert_eq!(
        per_epoch[0], per_epoch[1],
        "per-epoch allocation count is not constant: {per_epoch:?}"
    );
    assert_eq!(
        per_epoch[1], per_epoch[2],
        "per-epoch allocation count is not constant: {per_epoch:?}"
    );
    assert!(l0.is_finite());

    // The `_into` kernels themselves: exactly zero allocations once the
    // output buffers exist.
    let a = gen(33, 17, 2);
    let b = gen(17, 9, 3);
    let bt = gen(17, 9, 4);
    let dy = gen(33, 9, 5);
    let bias: Vec<f32> = (0..9).map(|i| i as f32 * 0.1).collect();
    let mut out_mn = vec![0f32; 33 * 9];
    let mut out_kn = vec![0f32; 17 * 9];
    let mut out_mk = vec![0f32; 33 * 17];
    let before = alloc_count();
    matmul_into(a.view(), b.view(), &mut out_mn);
    matmul_bias_relu_into(a.view(), b.view(), &bias, &mut out_mn);
    matmul_tn_into(a.view(), dy.view(), &mut out_kn);
    matmul_nt_into(dy.view(), bt.view(), &mut out_mk);
    let delta = alloc_count() - before;
    assert_eq!(delta, 0, "_into kernels allocated {delta} times");

    std::env::remove_var("FEDGTA_THREADS");
    refresh_thread_env();
}
