//! # fedgta-suite — umbrella crate
//!
//! Re-exports the public API of every crate in the FedGTA reproduction so
//! examples and downstream users can depend on a single crate:
//!
//! ```
//! use fedgta_suite::prelude::*;
//! ```

pub use fedgta as core;
pub use fedgta_bench as bench;
pub use fedgta_data as data;
pub use fedgta_fed as fed;
pub use fedgta_graph as graph;
pub use fedgta_nn as nn;
pub use fedgta_partition as partition;

/// Convenient glob import of the most-used types.
pub mod prelude {
    pub use fedgta_graph::{Csr, EdgeList};
    pub use fedgta_partition::{louvain, metis_kway, LouvainConfig, MetisConfig, Partition};
}
